// Block-matching motion estimation for the encoder.
//
// Full-pel three-step search seeded with the zero vector and the caller's
// predictor, followed by half-pel refinement — the classic structure of the
// MSSG encoder, sized for the paper's streams (search range a few pels; the
// synthetic scene pans slowly). Exhaustive search is also provided for
// tests and ablations.
#pragma once

#include "mpeg2/frame.h"
#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

struct MeResult {
  MotionVector mv;  // half-pel units
  int sad = 0;      // luma SAD at mv
};

/// Sum of absolute differences of the 16x16 luma block at (mb_x, mb_y) in
/// `cur` against the half-pel position `mv` in `ref`.
[[nodiscard]] int mb_sad(const Frame& ref, const Frame& cur, int mb_x,
                         int mb_y, MotionVector mv);

/// Three-step + half-pel search. `range` is the full-pel search radius;
/// candidates are clamped so all (half-pel) samples lie inside the coded
/// picture. `seed` is an optional starting vector (e.g. the PMV).
[[nodiscard]] MeResult estimate_motion(const Frame& ref, const Frame& cur,
                                       int mb_x, int mb_y, int range,
                                       MotionVector seed = {});

/// Exhaustive full-pel search over the clamped window plus half-pel
/// refinement; reference implementation for tests/ablation.
[[nodiscard]] MeResult estimate_motion_exhaustive(const Frame& ref,
                                                  const Frame& cur, int mb_x,
                                                  int mb_y, int range);

/// Field-prediction search (interlaced frame pictures): SAD over the
/// macroblock's `dest_parity` field lines (16x8) against the `src_parity`
/// field of `ref`; vectors in field coordinates. Three-step + half-pel,
/// like estimate_motion.
[[nodiscard]] MeResult estimate_motion_field(const Frame& ref,
                                             const Frame& cur, int mb_x,
                                             int mb_y, int dest_parity,
                                             int src_parity, int range);

/// Intra activity measure: SAD of the block against its own mean; used for
/// the intra/inter mode decision.
[[nodiscard]] int intra_activity(const Frame& cur, int mb_x, int mb_y);

/// dct_type decision heuristic (§interlace tools): returns true when the
/// macroblock's luma rows correlate better within fields than across them
/// (sum of |row_i - row_{i+2}| < sum of |row_i - row_{i+1}|).
[[nodiscard]] bool prefer_field_dct(const Frame& cur, int mb_x, int mb_y);

}  // namespace pmp2::mpeg2
