// Slice, macroblock and block decoding (ISO/IEC 13818-2 §6.2.4–§6.2.6,
// §7.1–§7.6).
//
// A slice is the unit of parallel work in the paper's fine-grained decoder:
// the standard resets all predictors (DC, motion-vector) at each slice
// start, so slices of one picture are independently decodable given the
// picture's reference frames and header state. SliceDecoder is therefore
// stateless across slices and safe to run concurrently on disjoint slices;
// the sequential decoder, the GOP-parallel decoder and the slice-parallel
// decoder all funnel through it, which is what makes their outputs
// bit-identical.
#pragma once

#include <array>
#include <cstdint>

#include "bitstream/bit_reader.h"
#include "mpeg2/frame.h"
#include "mpeg2/headers.h"
#include "mpeg2/scan_quant.h"
#include "mpeg2/trace.h"
#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

/// Optional hook observing every coded block right after dequantization
/// (before the IDCT). Used by bench_micro_kernels to harvest a realistic
/// coefficient-block corpus from decoded streams; not used in production
/// decode paths. Must be thread-safe if slices are decoded concurrently.
struct BlockObserver {
  virtual ~BlockObserver() = default;
  virtual void on_block(const Block& coeffs, bool intra) = 0;
};

/// Everything a worker needs to decode any slice of one picture.
struct PictureContext {
  const SequenceHeader* seq = nullptr;
  PictureHeader header;
  PictureCodingExtension ext;  // synthesized from the header for MPEG-1
  bool mpeg1 = false;          // MPEG-1 escape coding + full-pel vectors
  int mb_width = 0;
  int mb_height = 0;

  Frame* dst = nullptr;
  const Frame* fwd_ref = nullptr;  // past reference (P and B)
  const Frame* bwd_ref = nullptr;  // future reference (B only)

  // Logical frame ids for trace emission.
  int dst_id = 0;
  int fwd_id = -1;
  int bwd_id = -1;

  BlockObserver* block_observer = nullptr;
};

/// Decodes intra-DC differential coding state plus one 8x8 coefficient
/// block; exposed separately for unit tests.
class BlockDecoder {
 public:
  /// Decodes an intra block: dct_dc_size/differential then AC coefficients,
  /// inverse scan + dequantization included. Returns false on bad syntax.
  /// `dc_pred` is the caller-maintained predictor (QF domain). When
  /// `sparsity` is non-null it receives a conservative summary of the
  /// block's nonzero structure, tracked for free during the VLC loop and
  /// consumed by the sparsity-aware idct_int overload.
  static bool decode_intra(BitReader& br, const PictureContext& pic,
                           int quantiser_scale_code, bool luma, int& dc_pred,
                           Block& out, WorkMeter& work,
                           BlockSparsity* sparsity = nullptr);

  /// Decodes a non-intra block (table B-14 with the first-coefficient
  /// special case), inverse scan + dequantization included.
  static bool decode_non_intra(BitReader& br, const PictureContext& pic,
                               int quantiser_scale_code, Block& out,
                               WorkMeter& work,
                               BlockSparsity* sparsity = nullptr);
};

/// Result of decoding one slice.
struct SliceResult {
  bool ok = false;
  int macroblocks = 0;  // decoded + skipped
  // Absolute macroblock addresses written by this slice (inclusive,
  // contiguous: skipped MBs between coded ones are reconstructed too).
  // -1 when the slice wrote nothing. Error-recovery uses this to conceal
  // exactly the macroblocks no slice covered.
  int first_mb = -1;
  int last_mb = -1;
  WorkMeter work;
};

/// Decodes the slice whose startcode has just been consumed from `br`
/// (i.e. `br` is positioned at quantiser_scale_code). `slice_row` is the
/// macroblock row encoded in the startcode (slice_vertical_position - 1).
///
/// Thread-safety: concurrent calls must target distinct slices; each call
/// writes only the destination macroblocks addressed by its own slice.
[[nodiscard]] SliceResult decode_slice(BitReader& br, int slice_row,
                                       const PictureContext& pic,
                                       TraceSink* sink = nullptr,
                                       int proc = 0);

}  // namespace pmp2::mpeg2
