// DecodeServer: N concurrent MPEG-2 decode sessions multiplexed over one
// shared worker pool (ROADMAP item 1, docs/SERVING.md).
//
// Every decoder before this PR was one-shot: threads, buffers and lifetime
// all owned by a single decode() call. The server inverts that — one
// long-lived parallel::WorkerPool serves many sessions, each of which
// keeps the isolation-relevant state private:
//
//   * its own StructureScanner/StreamDemux producer thread (scan overlap
//     per session, bounded GOP queue with backpressure),
//   * its own FramePool and DisplaySink (frames and reordering never cross
//     sessions),
//   * its own quarantine/concealment state and ErrorLog (a corrupt
//     session's recovery is invisible to its neighbors — the isolation
//     guarantee the serve CI stage proves by checksum),
//   * its own obs::live::SessionSurface (per-session telemetry cells and
//     the queue-inclusive frame-latency histogram).
//
// Shared across sessions: the worker pool, the admission controller
// (bitrate/VBV predicted-load bookkeeping, serve/admission.h), the
// sched::pick_session fairness policy (weighted min-service), and the
// PR 9 adaptive dispatcher — should_explode() sees the queue depth summed
// over *all* sessions and one cross-session CostEwma, so a shallow global
// pipeline explodes GOPs for latency exactly as the single-stream
// adaptive decoder does.
//
// Teardown is graceful in both directions: wait() drains a session to its
// natural end; cancel() stops scheduling new work mid-GOP, lets in-flight
// tasks finish, and releases every pooled frame (SessionResult's pool
// counters let tests assert idle == misses — nothing leaked). A watchdog
// epoch spanning all sessions converts a wedged pipeline into per-session
// hung failures instead of a stuck server (watchdog_wedged below defines
// "wedged" — a long in-flight decode that keeps landing pictures is
// progress, not a wedge). Terminal sessions are retained until forget()
// releases them, so a long-lived server can bound its memory to the
// live set.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/live/session_set.h"
#include "obs/metrics.h"
#include "parallel/stats.h"
#include "serve/admission.h"

namespace pmp2::serve {

using SessionId = int;

enum class SessionState : std::uint8_t {
  kQueued,     // admitted to the wait list, not yet running
  kRunning,    // producer scanning / workers decoding
  kFinished,   // completed (possibly degraded); result valid
  kCancelled,  // cancel() before completion; result valid
  kFailed,     // decode/scan failure with recovery off, or hung
  kRejected,   // admission refused (invalid stream or over capacity)
};

[[nodiscard]] std::string_view session_state_name(SessionState s);

/// Pure watchdog verdict for one session, evaluated only after a full
/// period in which the cross-session scheduling epoch never moved while
/// work was pending. With the epoch static, a session whose remaining
/// work is claimable (or blocked on dependencies) with no claims
/// outstanding is wedged: an idle worker sat through the whole period
/// without claiming it. A session with in-flight claims is judged by its
/// telemetry instead — one legitimately long whole-GOP decode keeps
/// landing pictures (last_progress_ns advances) even though the epoch
/// does not, and must not be failed. `now_ns` and `last_progress_ns` are
/// on the session surface's telemetry epoch; a session that never
/// progressed (-1) is measured from that epoch's origin.
[[nodiscard]] constexpr bool watchdog_wedged(bool pending_work,
                                             int in_flight,
                                             std::int64_t now_ns,
                                             std::int64_t last_progress_ns,
                                             std::int64_t watchdog_ns) {
  if (!pending_work) return false;
  if (in_flight == 0) return true;
  const std::int64_t last = last_progress_ns < 0 ? 0 : last_progress_ns;
  return now_ns - last >= watchdog_ns;
}

struct SessionConfig {
  std::string name;          // report/telemetry label ("" = "session-<id>")
  double weight = 1.0;       // fair-share weight (sched::FairShare)
  /// GOP tasks queued unstarted before the session's producer blocks
  /// (per-session backpressure; 0 = unbounded).
  std::size_t max_queued_gops = 4;
  /// Bounded recovery exactly as the single-stream decoders define it
  /// (docs/ROBUSTNESS.md): conceal + quarantine, blast radius one GOP.
  bool quarantine_gops = true;
};

/// Terminal snapshot of one session. Valid once the session reached a
/// terminal state (wait() returns it).
struct SessionResult {
  SessionState state = SessionState::kQueued;
  bool ok = false;         // kFinished and the stream decoded
  bool hung = false;       // watchdog/display deadline fired
  std::uint64_t checksum = 0;  // display-order digest (== solo-run value)
  int pictures = 0;            // pictures indexed by the scan
  int pictures_delivered = 0;  // emitted in display order
  double wall_s = 0.0;         // running time (admission to terminal)
  double queued_s = 0.0;       // time spent waiting for admission
  int concealed_slices = 0;
  int concealed_pictures = 0;
  int quarantined_gops = 0;
  int gop_mode_gops = 0;   // adaptive dispatch split for this session
  int exploded_gops = 0;
  std::int64_t served_ns = 0;  // pool CPU time charged (fairness ledger)
  // Frame-pool accounting at teardown: idle == misses proves every frame
  // the session ever allocated was returned before the pool died.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_idle = 0;
  StreamLoadProfile profile;   // what admission predicted
  obs::HistogramSnapshot latency;  // queue-inclusive frame latency (ns)
  std::vector<parallel::ErrorRecord> errors;
  int errors_dropped = 0;

  [[nodiscard]] double pics_per_s() const {
    return wall_s > 0 ? pictures_delivered / wall_s : 0.0;
  }
};

struct ServerConfig {
  int workers = 4;
  AdmissionController::Config admission;  // capacity/max_sessions/max_queued
  /// Watchdog over the cross-session scheduling epoch and each session's
  /// display: a full period with pending work and no progress fails the
  /// affected sessions (never the server). 0 = off.
  std::int64_t watchdog_ns = 0;
  /// Adaptive dispatch knobs (sched::AdaptivePolicy); queue depth is
  /// summed across sessions.
  int depth_threshold = 0;
  double cost_factor = 2.0;
};

class DecodeServer {
 public:
  explicit DecodeServer(const ServerConfig& config);
  ~DecodeServer();  // cancels whatever still runs, then stops the pool

  DecodeServer(const DecodeServer&) = delete;
  DecodeServer& operator=(const DecodeServer&) = delete;

  /// Admission + session creation. `stream` must stay valid until the
  /// session reaches a terminal state (the server never copies it).
  /// Rejected submissions still return an id whose result says why.
  SessionId submit(std::span<const std::uint8_t> stream,
                   SessionConfig config);

  [[nodiscard]] SessionState state(SessionId id) const;

  /// Admission decision recorded at submit() time.
  [[nodiscard]] AdmissionDecision decision(SessionId id) const;

  /// Requests cancellation: queued sessions leave the wait list, running
  /// sessions stop scheduling new GOPs (in-flight tasks finish). False if
  /// the session was already terminal. wait() still returns the result.
  bool cancel(SessionId id);

  /// Blocks until the session is terminal; returns its result.
  SessionResult wait(SessionId id);

  /// Releases everything the server retains for a terminal session —
  /// the Session object (result, error log, latency bookkeeping) and its
  /// telemetry surface — so a long-lived server's memory tracks the live
  /// set instead of every session ever submitted. Returns false if the
  /// session is unknown, not yet terminal, or already forgotten. After
  /// forget(), state() and decision() still answer from a tombstone, but
  /// wait() returns only a stub carrying the terminal state, and any
  /// SessionSurface pointer obtained from surfaces() for this id is
  /// invalid. Sessions that are never forgotten are retained for the
  /// server's lifetime.
  bool forget(SessionId id);

  /// Blocks until every submitted session is terminal.
  void drain();

  /// Per-session telemetry surfaces (live cells + latency histograms).
  [[nodiscard]] obs::live::SessionSurfaces& surfaces();

  /// Pool-wide load summary over the shared workers (busy/sync/idle).
  [[nodiscard]] parallel::WorkerLoadSummary load_summary() const;

  [[nodiscard]] const AdmissionController& admission() const;
  [[nodiscard]] int workers() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pmp2::serve
