#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "mpeg2/structure_scan.h"
#include "parallel/display.h"
#include "parallel/gop_work.h"
#include "parallel/worker_pool.h"
#include "sched/adaptive.h"
#include "sched/fairness.h"
#include "util/timer.h"

namespace pmp2::serve {

namespace {

/// One GOP as a session's scheduler tracks it — the server-side analogue
/// of the adaptive decoder's GopEntry, plus the enqueue timestamp the
/// queue-inclusive latency histogram is measured from.
struct GopEntry {
  mpeg2::GopInfo info;
  int index = 0;
  int display_base = 0;
  std::uint64_t bytes = 0;
  std::int64_t enqueue_ns = 0;

  // Exploded state (latency mode), exactly the adaptive decoder's shape.
  bool exploded = false;
  std::vector<int> ranks;
  std::vector<int> newest;
  std::vector<int> older;
  std::vector<std::uint8_t> state;  // 0 unclaimed, 1 running, 2 complete
  std::vector<mpeg2::FramePtr> frames;
  int completed = 0;
  bool damaged = false;
  std::int64_t cost_ns = 0;
};

struct Session;

/// What one cross-session claim hands a worker. `gop` is resolved while
/// the server mutex is held: entries live in a std::deque whose *element*
/// addresses are stable, but re-indexing the deque unlocked would race
/// the producer's concurrent push_back on the deque's internal block map
/// — workers must go through this pointer, never s.entries[entry].
struct Claim {
  enum class Kind { kWholeGop, kPicture } kind = Kind::kWholeGop;
  Session* session = nullptr;
  GopEntry* gop = nullptr;
  int entry = -1;
  int pic = -1;
  bool popped_gop = false;
  int ranked_display = -1;
  std::int64_t charged_ns = 0;  // predicted cost debited at claim time
  mpeg2::FramePtr fwd, bwd;
};

struct Session {
  SessionId id = 0;
  SessionConfig cfg;
  StreamLoadProfile profile;
  std::span<const std::uint8_t> stream;
  AdmissionDecision decision = AdmissionDecision::kReject;
  SessionState state = SessionState::kQueued;

  // Decode context (created by the producer at start).
  mpeg2::StreamStructure structure;
  std::optional<mpeg2::FramePool> pool;
  std::optional<parallel::DisplaySink> display;
  std::atomic<int> concealed{0};
  std::atomic<int> concealed_pics{0};
  std::atomic<int> quarantined{0};
  parallel::ErrorLog errors;
  parallel::GopObs gobs;
  obs::live::SessionSurface* surface = nullptr;

  // Scheduler state, guarded by the server mutex.
  std::deque<GopEntry> entries;  // stable addresses
  std::deque<int> queue;         // queued whole-GOP entry ids
  std::vector<int> active;       // exploded, incomplete entry ids (sorted)
  int pushed = 0;
  int completed_gops = 0;
  int queued_gops = 0;  // entries sitting in `queue`
  int in_flight = 0;    // claims handed out, not yet finished
  int gop_mode_gops = 0;
  int exploded_gops = 0;
  bool scan_done = false;
  bool scan_ok = true;
  bool cancel_requested = false;
  bool aborted = false;  // unrecoverable decode/scan failure
  bool hung = false;
  int total_pictures = 0;
  std::int64_t served_ns = 0;
  /// Fairness ledger seed at admission (sched::virtual_start): subtracted
  /// back out when reporting, so SessionResult::served_ns stays pure pool
  /// CPU time.
  std::int64_t virtual_start_ns = 0;

  std::int64_t submit_ns = 0;
  std::int64_t start_ns = -1;
  std::int64_t finish_ns = -1;

  // Display-order enqueue timestamps feeding the latency histogram; the
  // producer appends under latency_mutex, the display emitter reads.
  std::mutex latency_mutex;
  std::vector<std::int64_t> enqueue_by_display;

  SessionResult result;
  bool result_ready = false;

  std::jthread producer;  // joined when the Session is destroyed

  [[nodiscard]] bool terminal() const {
    return state == SessionState::kFinished ||
           state == SessionState::kCancelled ||
           state == SessionState::kFailed ||
           state == SessionState::kRejected;
  }
  /// Work the pool could still be handed (or is holding) for this session.
  [[nodiscard]] bool pending_work() const {
    return state == SessionState::kRunning &&
           (!queue.empty() || !active.empty() || in_flight > 0);
  }
  [[nodiscard]] bool runnable() const {
    if (state != SessionState::kRunning || cancel_requested || aborted ||
        hung) {
      return false;
    }
    if (!queue.empty()) return true;
    return !active.empty();  // refined by has_ready_picture at claim time
  }
};

}  // namespace

std::string_view session_state_name(SessionState s) {
  switch (s) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kFinished:
      return "finished";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kFailed:
      return "failed";
    case SessionState::kRejected:
      return "rejected";
  }
  return "?";
}

struct DecodeServer::Impl {
  explicit Impl(const ServerConfig& config)
      : config_(config),
        admission_(config.admission, config.workers),
        surfaces_(config.workers) {
    policy_.depth_threshold = config.depth_threshold;
    policy_.cost_factor = config.cost_factor;
    worker_stats_.resize(static_cast<std::size_t>(config.workers));
    pool_.start(config.workers, [this](int w) { worker_main(w); });
  }

  ~Impl() {
    // Cancel whatever is not terminal, drain, stop the pool, and only
    // then destroy sessions (their producers join in ~Session).
    {
      const std::scoped_lock lock(mutex_);
      for (auto& s : sessions_) {
        if (s && !s->terminal()) request_cancel_locked(*s);
      }
    }
    drain();
    {
      const std::scoped_lock lock(mutex_);
      stop_ = true;
      ++epoch_;
      cv_.notify_all();
    }
    pool_.join();
  }

  // ----- Submission / lifecycle ------------------------------------------

  SessionId submit(std::span<const std::uint8_t> stream,
                   SessionConfig cfg) {
    StreamLoadProfile profile = characterize_stream(stream);
    std::unique_lock lock(mutex_);
    const SessionId id = static_cast<SessionId>(sessions_.size());
    auto owned = std::make_unique<Session>();
    Session& s = *owned;
    s.id = id;
    if (cfg.name.empty()) cfg.name = "session-" + std::to_string(id);
    s.cfg = std::move(cfg);
    s.profile = profile;
    s.stream = stream;
    s.submit_ns = timer_.elapsed_ns();
    s.decision = stop_ ? AdmissionDecision::kReject
                       : admission_.decide(profile);
    sessions_.push_back(std::move(owned));
    switch (s.decision) {
      case AdmissionDecision::kAdmit:
        admission_.admit(s.profile);
        start_session_locked(s);
        break;
      case AdmissionDecision::kQueue:
        admission_.enqueue();
        wait_list_.push_back(id);
        break;
      case AdmissionDecision::kReject:
        s.state = SessionState::kRejected;
        s.finish_ns = timer_.elapsed_ns();
        s.result.state = s.state;
        s.result.profile = s.profile;
        s.result_ready = true;
        break;
    }
    ++epoch_;
    cv_.notify_all();
    return id;
  }

  bool cancel(SessionId id) {
    const std::scoped_lock lock(mutex_);
    Session* s = find_locked(id);
    if (!s || s->terminal()) return false;
    request_cancel_locked(*s);
    ++epoch_;
    cv_.notify_all();
    return true;
  }

  SessionResult wait(SessionId id) {
    std::unique_lock lock(mutex_);
    // Re-resolve inside the predicate: a concurrent forget() may free the
    // Session between a notify and this thread reacquiring the lock.
    Session* s = nullptr;
    cv_.wait(lock, [&] {
      s = find_locked(id);
      return !s || s->result_ready;
    });
    if (s) return s->result;
    SessionResult stub;
    const auto it = forgotten_.find(id);
    if (it != forgotten_.end()) stub.state = it->second.state;
    return stub;
  }

  bool forget(SessionId id) {
    std::unique_ptr<Session> victim;
    {
      const std::scoped_lock lock(mutex_);
      Session* s = find_locked(id);
      if (!s || !s->result_ready) return false;
      forgotten_.emplace(id, Tombstone{s->state, s->decision});
      victim = std::move(sessions_[static_cast<std::size_t>(id)]);
    }
    // The producer is already past finalize (result_ready), so destroying
    // the Session outside the lock joins an exiting thread. The surface
    // goes last: nothing references it once the Session is gone.
    victim.reset();
    surfaces_.close(id);
    return true;
  }

  void drain() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] {
      for (const auto& s : sessions_) {
        if (s && !s->result_ready) return false;  // forgotten => was ready
      }
      return true;
    });
  }

  SessionState state(SessionId id) const {
    const std::scoped_lock lock(mutex_);
    if (const Session* s = find_locked(id)) return s->state;
    const auto it = forgotten_.find(id);
    return it != forgotten_.end() ? it->second.state
                                  : SessionState::kRejected;
  }

  AdmissionDecision decision(SessionId id) const {
    const std::scoped_lock lock(mutex_);
    if (const Session* s = find_locked(id)) return s->decision;
    const auto it = forgotten_.find(id);
    return it != forgotten_.end() ? it->second.decision
                                  : AdmissionDecision::kReject;
  }

  parallel::WorkerLoadSummary load_summary() const {
    std::vector<std::int64_t> busy, sync;
    {
      const std::scoped_lock lock(mutex_);
      for (const auto& ws : worker_stats_) {
        busy.push_back(ws.compute_ns);
        sync.push_back(ws.sync_ns);
      }
    }
    return parallel::summarize_load(busy, sync);
  }

  // ----- Internals -------------------------------------------------------

  Session* find_locked(SessionId id) {
    if (id < 0 || id >= static_cast<SessionId>(sessions_.size())) {
      return nullptr;
    }
    return sessions_[static_cast<std::size_t>(id)].get();
  }
  const Session* find_locked(SessionId id) const {
    return const_cast<Impl*>(this)->find_locked(id);
  }

  void start_session_locked(Session& s) {
    // Start-time fair queueing: seed the arrival's service ledger at the
    // running sessions' minimum, so it competes from "now" instead of
    // monopolizing the pool until its lifetime total catches up.
    shares_.clear();
    for (const auto& other : sessions_) {
      if (!other || other.get() == &s) continue;
      if (other->state != SessionState::kRunning) continue;
      sched::FairShare share;
      share.weight = other->cfg.weight;
      share.served_ns = other->served_ns;
      shares_.push_back(share);
    }
    s.virtual_start_ns = sched::virtual_start(s.cfg.weight, shares_);
    s.served_ns = s.virtual_start_ns;
    s.state = SessionState::kRunning;
    s.start_ns = timer_.elapsed_ns();
    s.surface = &surfaces_.open(s.id, s.cfg.name);
    s.producer = std::jthread([this, &s] { producer_main(s); });
  }

  void request_cancel_locked(Session& s) {
    if (s.state == SessionState::kQueued) {
      // Still in the admission wait list: remove and finish immediately.
      wait_list_.erase(std::find(wait_list_.begin(), wait_list_.end(), s.id));
      admission_.dequeue();
      s.cancel_requested = true;
      s.state = SessionState::kCancelled;
      s.finish_ns = timer_.elapsed_ns();
      s.result.state = s.state;
      s.result.profile = s.profile;
      s.result.queued_s =
          static_cast<double>(s.finish_ns - s.submit_ns) / 1e9;
      s.result_ready = true;
      return;
    }
    if (s.state != SessionState::kRunning) return;
    s.cancel_requested = true;
    purge_session_queue_locked(s);
  }

  /// Drops every unstarted task of `s` so the pool stops serving it:
  /// queued whole GOPs leave the queue, unclaimed pictures of exploded
  /// GOPs are marked complete without a frame. In-flight tasks finish on
  /// their own; their frames are released at entry completion as usual.
  void purge_session_queue_locked(Session& s) {
    queued_total_ -= static_cast<int>(s.queue.size());
    if (s.surface) {
      s.surface->live.add_queue_depth(
          -static_cast<std::int64_t>(s.queue.size()));
    }
    s.queue.clear();
    s.queued_gops = 0;
    for (auto it = s.active.begin(); it != s.active.end();) {
      GopEntry& e = s.entries[static_cast<std::size_t>(*it)];
      for (std::size_t i = 0; i < e.state.size(); ++i) {
        if (e.state[i] == 0) {
          e.state[i] = 2;
          ++e.completed;
        }
      }
      if (e.completed == static_cast<int>(e.info.pictures.size())) {
        e.frames.clear();
        ++s.completed_gops;
        it = s.active.erase(it);
      } else {
        ++it;  // in-flight pictures remain; finish_picture completes it
      }
    }
    ++epoch_;
    cv_.notify_all();
  }

  // --- Producer: one per running session (scan + lifecycle). -------------

  void producer_main(Session& s) {
    mpeg2::StructureScanner scanner(s.stream);
    if (!scanner.scan_preamble()) {
      // Admission validated the preamble, so this is defensive only.
      const std::scoped_lock lock(mutex_);
      s.aborted = true;
      finalize_locked(s);
      return;
    }
    s.structure.seq = scanner.seq();
    s.structure.ext = scanner.ext();
    s.structure.mpeg1 = scanner.mpeg1();
    s.structure.valid = true;
    // No reserve() warm-up: the teardown leak proof is the exact invariant
    // idle == misses (every frame ever allocated is back in the free
    // list), and reserve's uncounted allocations would blur it.
    s.pool.emplace(s.structure.seq.horizontal_size,
                   s.structure.seq.vertical_size);
    s.display.emplace([this, &s](mpeg2::FramePtr frame) {
      record_latency(s, *frame);
    });
    s.display->set_live(&s.surface->live);
    s.gobs.conceal_errors = s.cfg.quarantine_gops;
    s.gobs.quarantine = s.cfg.quarantine_gops;
    s.gobs.concealed = &s.concealed;
    s.gobs.concealed_pics = &s.concealed_pics;
    s.gobs.quarantined = &s.quarantined;
    s.gobs.errors = s.cfg.quarantine_gops ? &s.errors : nullptr;
    s.gobs.live = &s.surface->live;

    // Scan loop: stream GOPs into the session queue with backpressure.
    int index = 0;
    for (;;) {
      mpeg2::GopInfo gop;
      const bool have = scanner.next_gop(gop);
      {
        obs::live::TelemetryCell::Write lw(s.surface->live.scan());
        lw.set_bytes(static_cast<std::int64_t>(scanner.position()));
      }
      std::unique_lock lock(mutex_);
      if (s.cancel_requested || s.aborted || s.hung) break;
      if (!have) {
        s.scan_ok = !scanner.failed() && index > 0;
        if (scanner.failed() && s.cfg.quarantine_gops) {
          s.errors.add({parallel::RecoveryCause::kScanTruncated, index, -1,
                        scanner.position()});
          if (scanner.failed_in_gop() && !gop.pictures.empty()) {
            push_gop_locked(s, std::move(gop), index, lock);
            ++index;
          }
          s.scan_ok = s.total_pictures > 0;
        }
        break;
      }
      if (!gop.closed) {
        if (!s.cfg.quarantine_gops) {
          s.scan_ok = false;
          break;
        }
        s.errors.add(
            {parallel::RecoveryCause::kOpenGop, index, -1, gop.offset});
      }
      push_gop_locked(s, std::move(gop), index, lock);
      ++index;
    }

    // Lifecycle tail: publish the total, wait for the pool to finish the
    // session's work, then drain the display and finalize.
    bool wait_display = false;
    {
      std::unique_lock lock(mutex_);
      s.scan_done = true;
      ++epoch_;
      cv_.notify_all();
      cv_.wait(lock, [&] {
        if (s.aborted || s.hung) return s.in_flight == 0;
        if (s.cancel_requested) return s.in_flight == 0;
        return s.completed_gops == s.pushed && s.in_flight == 0;
      });
      wait_display = !s.cancel_requested && !s.aborted && !s.hung &&
                     s.scan_ok;
      if (wait_display) s.display->set_total(s.total_pictures);
    }
    if (wait_display &&
        !s.display->wait_done_for(config_.watchdog_ns)) {
      const std::scoped_lock lock(mutex_);
      s.hung = true;
      s.errors.add({parallel::RecoveryCause::kDisplayTimeout, -1, -1, 0});
    }
    const std::scoped_lock lock(mutex_);
    finalize_locked(s);
  }

  /// Appends one scanned GOP, blocking while the session's bounded queue
  /// is full (per-session backpressure; the pool keeps serving everyone
  /// else meanwhile).
  void push_gop_locked(Session& s, mpeg2::GopInfo&& gop, int index,
                       std::unique_lock<std::mutex>& lock) {
    if (s.cfg.max_queued_gops > 0) {
      WallTimer blocked;
      cv_.wait(lock, [&] {
        return s.queued_gops < static_cast<int>(s.cfg.max_queued_gops) ||
               s.cancel_requested || s.aborted || s.hung || stop_;
      });
      const std::int64_t blocked_ns = blocked.elapsed_ns();
      if (blocked_ns > 0) {
        obs::live::TelemetryCell::Write lw(s.surface->live.scan());
        lw.add_backpressure_ns(blocked_ns);
      }
    }
    if (s.cancel_requested || s.aborted || s.hung || stop_) return;
    const int id = static_cast<int>(s.entries.size());
    s.entries.emplace_back();
    GopEntry& e = s.entries.back();
    e.info = std::move(gop);
    e.index = index;
    e.display_base = s.total_pictures;
    e.bytes = e.info.end_offset - e.info.offset;
    e.enqueue_ns = timer_.elapsed_ns();
    const int pics = static_cast<int>(e.info.pictures.size());
    {
      const std::scoped_lock latency_lock(s.latency_mutex);
      s.enqueue_by_display.resize(
          static_cast<std::size_t>(s.total_pictures + pics), e.enqueue_ns);
    }
    s.total_pictures += pics;
    s.queue.push_back(id);
    ++s.queued_gops;
    ++s.pushed;
    ++queued_total_;
    s.surface->live.add_queue_depth(1);
    {
      obs::live::TelemetryCell::Write lw(s.surface->live.scan());
      lw.add_tasks().set_last_progress_ns(s.surface->live.now_ns());
    }
    ++epoch_;
    cv_.notify_all();
  }

  void record_latency(Session& s, const mpeg2::Frame& frame) {
    std::int64_t enqueue = -1;
    {
      const std::scoped_lock lock(s.latency_mutex);
      if (frame.display_index >= 0 &&
          frame.display_index <
              static_cast<int>(s.enqueue_by_display.size())) {
        enqueue = s.enqueue_by_display[
            static_cast<std::size_t>(frame.display_index)];
      }
    }
    if (enqueue < 0) return;
    s.surface->queue_latency.record(timer_.elapsed_ns() - enqueue);
  }

  // --- Cross-session scheduling (the worker side). ------------------------

  bool claim(Claim& out, int worker) {
    parallel::WorkerStats& stats =
        worker_stats_[static_cast<std::size_t>(worker)];
    WallTimer waited;
    std::unique_lock lock(mutex_);
    for (;;) {
      if (stop_) break;
      if (try_claim_locked(out)) {
        stats.sync_ns += waited.elapsed_ns();
        return true;
      }
      if (config_.watchdog_ns > 0 && pending_work_locked()) {
        const std::uint64_t before = epoch_;
        const auto status = cv_.wait_for(
            lock, std::chrono::nanoseconds(config_.watchdog_ns));
        if (status == std::cv_status::timeout && epoch_ == before &&
            !stop_ && pending_work_locked()) {
          // No *scheduling* progress for a full period with work pending.
          // That alone is not a wedge: one legitimately long in-flight
          // decode with every other worker idle has exactly this
          // signature while still landing pictures. Fail only the
          // sessions watchdog_wedged condemns — claimable-but-unclaimed
          // work, or in-flight claims whose telemetry went silent for a
          // full period — never the server.
          for (auto& s : sessions_) {
            if (!s || !session_wedged_locked(*s)) continue;
            s->hung = true;
            s->errors.add(
                {parallel::RecoveryCause::kWatchdog, -1, -1, 0});
            purge_session_queue_locked(*s);  // bumps epoch_, notifies
          }
        }
      } else {
        cv_.wait(lock);
      }
    }
    stats.sync_ns += waited.elapsed_ns();
    return false;
  }

  [[nodiscard]] bool pending_work_locked() const {
    for (const auto& s : sessions_) {
      if (s && s->pending_work()) return true;
    }
    return false;
  }

  /// The session-level half of the watchdog: feeds watchdog_wedged the
  /// newest last_progress_ns across the session's telemetry cells (the
  /// workers land one per picture even inside a whole-GOP decode, the
  /// display one per emission).
  [[nodiscard]] bool session_wedged_locked(const Session& s) const {
    if (!s.pending_work()) return false;
    if (s.in_flight == 0 || !s.surface) {
      return watchdog_wedged(true, s.in_flight, 0, 0, config_.watchdog_ns);
    }
    const auto& live = s.surface->live;
    std::int64_t last = live.scan().sample().last_progress_ns;
    for (int w = 0; w < live.workers(); ++w) {
      last = std::max(last, live.worker(w).sample().last_progress_ns);
    }
    last = std::max(last, live.display().sample().last_progress_ns);
    return watchdog_wedged(true, s.in_flight, live.now_ns(), last,
                           config_.watchdog_ns);
  }

  /// Fair pick, then intra-session dispatch: ready exploded pictures
  /// before queued whole GOPs (frames closest to display first), and the
  /// whole-vs-exploded decision at pop time from the *global* queue depth
  /// plus the shared cross-session CostEwma — the PR 9 dispatcher with
  /// its signal widened to the whole server.
  bool try_claim_locked(Claim& out) {
    shares_.clear();
    for (const auto& s : sessions_) {
      sched::FairShare share;  // forgotten slots stay non-runnable so the
      if (s) {                 // picked index still maps into sessions_
        share.weight = s->cfg.weight;
        share.served_ns = s->served_ns;
        share.runnable = s->runnable() && has_claimable_locked(*s);
      }
      shares_.push_back(share);
    }
    const int idx = sched::pick_session(shares_);
    if (idx < 0) return false;
    Session& s = *sessions_[static_cast<std::size_t>(idx)];
    // Ready exploded picture first, lowest entry id (closest to display).
    for (const int g : s.active) {
      GopEntry& e = s.entries[static_cast<std::size_t>(g)];
      for (int i = 0; i < static_cast<int>(e.info.pictures.size()); ++i) {
        if (pic_ready(e, i)) {
          fill_picture_claim(s, e, g, i, false, out);
          charge_claim_locked(s, out, e.bytes /
                                          e.info.pictures.size());
          return true;
        }
      }
    }
    const int g = s.queue.front();
    s.queue.pop_front();
    --s.queued_gops;
    --queued_total_;
    s.surface->live.add_queue_depth(-1);
    dispatch_locked(s, g, out);
    return true;
  }

  [[nodiscard]] bool has_claimable_locked(const Session& s) const {
    if (!s.queue.empty()) return true;
    for (const int g : s.active) {
      const GopEntry& e = s.entries[static_cast<std::size_t>(g)];
      for (int i = 0; i < static_cast<int>(e.info.pictures.size()); ++i) {
        if (pic_ready(e, i)) return true;
      }
    }
    return false;
  }

  static bool pic_ready(const GopEntry& e, int i) {
    if (e.state[static_cast<std::size_t>(i)] != 0) return false;
    const int nw = e.newest[static_cast<std::size_t>(i)];
    if (nw >= 0 && e.state[static_cast<std::size_t>(nw)] != 2) return false;
    if (e.info.pictures[static_cast<std::size_t>(i)].type ==
        mpeg2::PictureType::kB) {
      const int ol = e.older[static_cast<std::size_t>(i)];
      if (ol >= 0 && e.state[static_cast<std::size_t>(ol)] != 2) {
        return false;
      }
    }
    return true;
  }

  void fill_picture_claim(Session& s, GopEntry& e, int g, int i,
                          bool popped, Claim& out) {
    e.state[static_cast<std::size_t>(i)] = 1;
    out.kind = Claim::Kind::kPicture;
    out.session = &s;
    out.gop = &e;
    out.entry = g;
    out.pic = i;
    out.popped_gop = popped;
    const int nw = e.newest[static_cast<std::size_t>(i)];
    const int ol = e.older[static_cast<std::size_t>(i)];
    out.bwd = nw >= 0 ? e.frames[static_cast<std::size_t>(nw)] : nullptr;
    out.fwd = ol >= 0 ? e.frames[static_cast<std::size_t>(ol)] : nullptr;
    out.ranked_display =
        s.cfg.quarantine_gops
            ? e.display_base + e.ranks[static_cast<std::size_t>(i)]
            : -1;
  }

  void dispatch_locked(Session& s, int g, Claim& out) {
    GopEntry& e = s.entries[static_cast<std::size_t>(g)];
    const bool explode =
        !e.info.pictures.empty() &&
        sched::should_explode(policy_, config_.workers, queued_total_ + 1,
                              ewma_, e.bytes);
    ++epoch_;
    if (explode) {
      ++s.exploded_gops;
      explode_entry(s, e);
      s.active.insert(
          std::lower_bound(s.active.begin(), s.active.end(), g), g);
      for (int i = 0; i < static_cast<int>(e.info.pictures.size()); ++i) {
        if (pic_ready(e, i)) {
          fill_picture_claim(s, e, g, i, true, out);
          break;
        }
      }
      charge_claim_locked(s, out,
                          e.bytes / std::max<std::size_t>(
                                        e.info.pictures.size(), 1));
    } else {
      ++s.gop_mode_gops;
      out.kind = Claim::Kind::kWholeGop;
      out.session = &s;
      out.gop = &e;
      out.entry = g;
      out.pic = -1;
      out.popped_gop = true;
      charge_claim_locked(s, out, e.bytes);
    }
    cv_.notify_all();  // a backpressured producer may resume
  }

  /// Debits the predicted cost at claim time so two claims between
  /// completions still spread fairly; finish_* settles the difference
  /// against the measured cost.
  void charge_claim_locked(Session& s, Claim& out, std::uint64_t bytes) {
    const std::int64_t predicted = ewma_.predict(bytes);
    out.charged_ns = predicted > 0 ? predicted : 0;
    s.served_ns += out.charged_ns;
    ++s.in_flight;
  }

  void explode_entry(Session& s, GopEntry& e) {
    const std::size_t n = e.info.pictures.size();
    e.exploded = true;
    e.newest.assign(n, -1);
    e.older.assign(n, -1);
    e.state.assign(n, 0);
    e.frames.assign(n, nullptr);
    if (s.cfg.quarantine_gops) e.ranks = mpeg2::display_ranks(e.info);
    int older = -1, newest = -1;
    for (std::size_t i = 0; i < n; ++i) {
      e.newest[i] = newest;
      e.older[i] = older;
      if (e.info.pictures[i].type != mpeg2::PictureType::kB) {
        older = newest;
        newest = static_cast<int>(i);
      }
    }
  }

  void settle_claim_locked(Session& s, const Claim& claim,
                           std::int64_t task_ns) {
    s.served_ns += task_ns - claim.charged_ns;
    --s.in_flight;
  }

  void finish_whole(const Claim& claim, std::int64_t task_ns, bool ok) {
    const std::scoped_lock lock(mutex_);
    Session& s = *claim.session;
    ++epoch_;
    settle_claim_locked(s, claim, task_ns);
    if (!ok) {
      abort_session_locked(s);
    } else {
      ewma_.observe(task_ns, claim.gop->bytes);
      ++s.completed_gops;
    }
    cv_.notify_all();
  }

  void finish_picture(const Claim& claim, mpeg2::FramePtr frame,
                      std::int64_t task_ns, bool damaged, bool ok) {
    const std::scoped_lock lock(mutex_);
    Session& s = *claim.session;
    ++epoch_;
    settle_claim_locked(s, claim, task_ns);
    if (!ok) {
      abort_session_locked(s);
      cv_.notify_all();
      return;
    }
    GopEntry& e = *claim.gop;
    e.frames[static_cast<std::size_t>(claim.pic)] = std::move(frame);
    e.state[static_cast<std::size_t>(claim.pic)] = 2;
    e.cost_ns += task_ns;
    if (damaged) e.damaged = true;
    if (++e.completed == static_cast<int>(e.info.pictures.size())) {
      if (e.damaged) s.quarantined.fetch_add(1, std::memory_order_relaxed);
      ewma_.observe(e.cost_ns, e.bytes);
      const auto it = std::find(s.active.begin(), s.active.end(),
                                claim.entry);
      if (it != s.active.end()) s.active.erase(it);
      e.frames.clear();  // return reference frames to the session pool
      ++s.completed_gops;
    }
    cv_.notify_all();
  }

  void abort_session_locked(Session& s) {
    s.aborted = true;
    purge_session_queue_locked(s);
  }

  /// Terminal-state bookkeeping. The heavyweight teardown (display,
  /// entries, pool) happens here too: by the time finalize runs, the
  /// session has no in-flight work, so no worker touches its state.
  void finalize_locked(Session& s) {
    s.finish_ns = timer_.elapsed_ns();
    SessionResult& r = s.result;
    r.profile = s.profile;
    r.pictures = s.total_pictures;
    r.pictures_delivered = s.display ? s.display->emitted() : 0;
    r.hung = s.hung;
    r.served_ns = s.served_ns - s.virtual_start_ns;
    r.gop_mode_gops = s.gop_mode_gops;
    r.exploded_gops = s.exploded_gops;
    r.concealed_slices = s.concealed.load(std::memory_order_relaxed);
    r.concealed_pictures = s.concealed_pics.load(std::memory_order_relaxed);
    r.quarantined_gops = s.quarantined.load(std::memory_order_relaxed);
    s.errors.drain(r.errors, r.errors_dropped);
    if (s.start_ns >= 0) {
      r.wall_s = static_cast<double>(s.finish_ns - s.start_ns) / 1e9;
      r.queued_s = static_cast<double>(s.start_ns - s.submit_ns) / 1e9;
    }
    if (s.surface) r.latency = s.surface->queue_latency.snapshot();
    if (s.hung || s.aborted || (!s.scan_ok && !s.cancel_requested)) {
      s.state = SessionState::kFailed;
    } else if (s.cancel_requested) {
      s.state = SessionState::kCancelled;
    } else {
      s.state = SessionState::kFinished;
      r.ok = true;
      r.checksum = s.display->checksum();
    }
    r.state = s.state;
    // Teardown order matters for the leak proof: the display's reorder
    // buffer and the entries' reference frames go back to the pool first,
    // then the pool's counters are read.
    s.entries.clear();
    s.display.reset();
    if (s.pool) {
      r.pool_hits = s.pool->hits();
      r.pool_misses = s.pool->misses();
      r.pool_idle = s.pool->idle_count();
      s.pool.reset();
    }
    s.result_ready = true;
    // This session's load is free; maybe the wait list fits now.
    if (s.decision == AdmissionDecision::kAdmit ||
        s.decision == AdmissionDecision::kQueue) {
      admission_.release(s.profile);
    }
    admit_from_wait_list_locked();
    ++epoch_;
    cv_.notify_all();
  }

  void admit_from_wait_list_locked() {
    while (!wait_list_.empty()) {
      Session* next = find_locked(wait_list_.front());
      if (!next) break;
      // Same work-conserving rule as decide(): an idle server admits the
      // head of the queue even when its load alone exceeds capacity.
      if (!admission_.fits(next->profile) && admission_.running() > 0) {
        break;
      }
      wait_list_.pop_front();
      admission_.dequeue();
      admission_.admit(next->profile);
      start_session_locked(*next);
    }
  }

  // --- Worker main loop ---------------------------------------------------

  void worker_main(int w) {
    parallel::WorkerStats& stats =
        worker_stats_[static_cast<std::size_t>(w)];
    for (;;) {
      Claim claim;
      if (!this->claim(claim, w)) break;
      Session& s = *claim.session;
      ThreadCpuTimer cpu;
      // claim.gop was resolved under mutex_; never re-index s.entries
      // here — the producer may be push_back-ing the deque concurrently.
      // finish_* must stay the worker's LAST touch of the session: once
      // in_flight drops, the producer can finalize and a client's
      // forget() can free the Session and its surface.
      if (claim.kind == Claim::Kind::kWholeGop) {
        const GopEntry& e = *claim.gop;
        const parallel::GopTask task{&e.info, e.index, e.display_base,
                                     e.display_base};
        const bool ok = parallel::decode_gop(s.stream, s.structure, task,
                                             *s.pool, *s.display, stats,
                                             s.gobs, w);
        const std::int64_t task_ns = cpu.elapsed_ns();
        note_task(stats, s, w, task_ns);
        finish_whole(claim, task_ns, ok);
      } else {
        const GopEntry& e = *claim.gop;
        const auto& info =
            e.info.pictures[static_cast<std::size_t>(claim.pic)];
        parallel::PictureOutcome out = parallel::decode_one_picture(
            s.stream, s.structure, info, e.index,
            e.display_base + claim.pic, e.display_base,
            claim.ranked_display, claim.fwd, claim.bwd, *s.pool,
            *s.display, stats, s.gobs, w);
        const std::int64_t task_ns = cpu.elapsed_ns();
        const bool ok = out.frame != nullptr;
        const bool damaged =
            out.quarantined ||
            (out.concealed_slices > 0 && s.cfg.quarantine_gops);
        // Drop the reference handles BEFORE finish_picture decrements
        // in_flight: the producer reads the pool's leak counters the
        // moment in_flight hits zero, and these two FramePtrs must be
        // back in the free list by then.
        claim.fwd.reset();
        claim.bwd.reset();
        note_task(stats, s, w, task_ns);
        finish_picture(claim, std::move(out.frame), task_ns, damaged, ok);
      }
    }
  }

  void note_task(parallel::WorkerStats& stats, Session& s, int w,
                 std::int64_t task_ns) {
    {
      // load_summary() reads these under mutex_ from other threads.
      // note_task runs BEFORE finish_* settles the claim, so by the time
      // wait() can return, this accounting (and the surface write below)
      // has already landed — which is also what makes forget() safe.
      const std::scoped_lock lock(mutex_);
      stats.compute_ns += task_ns;
      ++stats.tasks;
    }
    obs::live::TelemetryCell::Write lw(s.surface->live.worker(w));
    lw.add_tasks().add_busy_ns(task_ns);
  }

  const ServerConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  WallTimer timer_;  // server epoch for every timestamp
  AdmissionController admission_;
  obs::live::SessionSurfaces surfaces_;
  sched::AdaptivePolicy policy_;
  sched::CostEwma ewma_;  // cross-session cost signal
  /// Indexed by SessionId; forget() nulls a slot (ids are never reused)
  /// and leaves a tombstone so state()/decision() keep answering.
  struct Tombstone {
    SessionState state;
    AdmissionDecision decision;
  };
  std::deque<std::unique_ptr<Session>> sessions_;
  std::unordered_map<SessionId, Tombstone> forgotten_;
  std::deque<SessionId> wait_list_;
  std::vector<sched::FairShare> shares_;  // scratch for try_claim
  std::vector<parallel::WorkerStats> worker_stats_;
  int queued_total_ = 0;  // GOP tasks queued across all sessions
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  parallel::WorkerPool pool_;  // last member: joins before the rest dies
};

DecodeServer::DecodeServer(const ServerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

DecodeServer::~DecodeServer() = default;

SessionId DecodeServer::submit(std::span<const std::uint8_t> stream,
                               SessionConfig config) {
  return impl_->submit(stream, std::move(config));
}

SessionState DecodeServer::state(SessionId id) const {
  return impl_->state(id);
}

AdmissionDecision DecodeServer::decision(SessionId id) const {
  return impl_->decision(id);
}

bool DecodeServer::cancel(SessionId id) { return impl_->cancel(id); }

SessionResult DecodeServer::wait(SessionId id) { return impl_->wait(id); }

bool DecodeServer::forget(SessionId id) { return impl_->forget(id); }

void DecodeServer::drain() { impl_->drain(); }

obs::live::SessionSurfaces& DecodeServer::surfaces() {
  return impl_->surfaces_;
}

parallel::WorkerLoadSummary DecodeServer::load_summary() const {
  return impl_->load_summary();
}

const AdmissionController& DecodeServer::admission() const {
  return impl_->admission_;
}

int DecodeServer::workers() const { return impl_->config_.workers; }

}  // namespace pmp2::serve
