// Admission control for the multi-stream DecodeServer (docs/SERVING.md).
//
// Before a session touches the worker pool, its stream is characterized
// from the preamble alone — sequence header bit rate, VBV buffer size,
// frame rate, and resolution — the MPEG-2 bandwidth-characterization
// angle (PAPERS.md): those four numbers bound the decode work the stream
// can demand per second, so the server can admit by *predicted* load
// instead of discovering an overload after it already missed deadlines.
//
// The load model is deliberately simple and fully deterministic (unit
// tests pin it exactly):
//
//   mb_per_s     = ceil(w/16) * ceil(h/16) * frame_rate
//   burst_rate   = bit_rate + vbv_bits * frame_rate / kVbvAmortPictures
//   load         = mb_per_s * (kPelCostShare
//                              + kBitCostShare * bits_per_mb / kRefBitsPerMb)
//
// mb_per_s is the pel-proportional half of decode cost (IDCT, MC,
// reconstruction run per macroblock regardless of coded size); the coded
// bits per macroblock scale the VLC half. burst_rate, not the nominal
// rate, feeds bits_per_mb: a stream may legally drain its whole VBV
// buffer in a short window, so admission must budget for the burst a
// compliant encoder can emit, amortized over kVbvAmortPictures pictures.
//
// Capacity is expressed in the same load units. The AdmissionController
// never blocks: decide() is pure bookkeeping under the caller's lock, and
// the server maps kQueue to its FIFO wait list.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace pmp2::serve {

/// Load-model constants (documented above; tests pin the arithmetic).
inline constexpr double kPelCostShare = 0.6;
inline constexpr double kBitCostShare = 0.4;
inline constexpr double kRefBitsPerMb = 512.0;
inline constexpr int kVbvAmortPictures = 30;
/// Default per-worker capacity in load units: one worker sustains roughly
/// a 704x480@30 stream at 5 Mb/s (~39.6k mb/s at its coded density) with
/// ~25% headroom. Hosts that know better pass an explicit capacity.
inline constexpr double kDefaultWorkerCapacity = 50'000.0;

/// What the preamble scan learned about one stream.
struct StreamLoadProfile {
  bool valid = false;        // preamble parsed (invalid streams are rejected)
  int width = 0;
  int height = 0;
  int mb_width = 0;
  int mb_height = 0;
  double frame_rate = 0.0;          // pictures/sec from the sequence header
  std::int64_t bit_rate = 0;        // nominal bits/sec
  std::int64_t vbv_bits = 0;        // VBV buffer size in bits (16 kbit units)
  double burst_bits_per_s = 0.0;    // bit_rate + VBV drain amortization
  double mb_per_s = 0.0;            // macroblocks/sec at the header rate
  double bits_per_mb = 0.0;         // burst bits per macroblock
  double predicted_load = 0.0;      // admission units (model above)
};

/// Characterizes `stream` from its preamble only (sequence header +
/// extensions up to the first GOP header) — O(preamble bytes), no decode.
/// `valid` is false when no sequence header parses, and predicted_load is
/// then 0.
[[nodiscard]] StreamLoadProfile characterize_stream(
    std::span<const std::uint8_t> stream);

enum class AdmissionDecision : std::uint8_t {
  kAdmit,   // capacity available: start now
  kQueue,   // over capacity but queueable: wait for a session to finish
  kReject,  // invalid stream, or over capacity with queueing disabled/full
};

[[nodiscard]] std::string_view admission_decision_name(AdmissionDecision d);

/// Capacity bookkeeping for one server. Not thread-safe by itself — the
/// server calls it under its scheduling mutex.
class AdmissionController {
 public:
  struct Config {
    double capacity = 0.0;    // total load units (<=0: workers * default)
    int max_sessions = 0;     // concurrently running sessions (0 = no cap)
    int max_queued = 0;       // sessions allowed to wait (0 = reject instead)
  };

  AdmissionController(const Config& config, int workers)
      : config_(config),
        capacity_(config.capacity > 0
                      ? config.capacity
                      : kDefaultWorkerCapacity * (workers > 0 ? workers : 1)) {
  }

  /// Decision for a new stream with profile `p`. Does not change state —
  /// the server commits with admit()/enqueue() after it acted on the
  /// decision.
  [[nodiscard]] AdmissionDecision decide(const StreamLoadProfile& p) const;

  /// Commits an admitted session's load.
  void admit(const StreamLoadProfile& p) {
    admitted_load_ += p.predicted_load;
    ++running_;
  }
  /// Releases a finished/cancelled session's load.
  void release(const StreamLoadProfile& p) {
    admitted_load_ -= p.predicted_load;
    if (admitted_load_ < 0) admitted_load_ = 0;
    --running_;
  }
  void enqueue() { ++queued_; }
  void dequeue() { --queued_; }

  /// True when `p` would fit right now (the admit() half of decide()).
  [[nodiscard]] bool fits(const StreamLoadProfile& p) const {
    if (config_.max_sessions > 0 && running_ >= config_.max_sessions) {
      return false;
    }
    return admitted_load_ + p.predicted_load <= capacity_;
  }

  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] double admitted_load() const { return admitted_load_; }
  [[nodiscard]] int running() const { return running_; }
  [[nodiscard]] int queued() const { return queued_; }

 private:
  Config config_;
  double capacity_;
  double admitted_load_ = 0.0;
  int running_ = 0;
  int queued_ = 0;
};

}  // namespace pmp2::serve
