#include "serve/admission.h"

#include "mpeg2/structure_scan.h"

namespace pmp2::serve {

StreamLoadProfile characterize_stream(std::span<const std::uint8_t> stream) {
  StreamLoadProfile p;
  mpeg2::StructureScanner scanner(stream);
  if (!scanner.scan_preamble()) return p;
  const mpeg2::SequenceHeader& seq = scanner.seq();
  p.valid = true;
  p.width = seq.horizontal_size;
  p.height = seq.vertical_size;
  p.mb_width = scanner.mb_width();
  p.mb_height = scanner.mb_height();
  p.frame_rate = seq.frame_rate();
  p.bit_rate = seq.bit_rate;
  // vbv_buffer_size is coded in 16-kbit units (ISO 13818-2 §6.3.3).
  p.vbv_bits = static_cast<std::int64_t>(seq.vbv_buffer_size_value) * 16'384;
  p.burst_bits_per_s =
      static_cast<double>(p.bit_rate) +
      static_cast<double>(p.vbv_bits) * p.frame_rate / kVbvAmortPictures;
  p.mb_per_s = static_cast<double>(p.mb_width) *
               static_cast<double>(p.mb_height) * p.frame_rate;
  p.bits_per_mb = p.mb_per_s > 0 ? p.burst_bits_per_s / p.mb_per_s : 0.0;
  p.predicted_load =
      p.mb_per_s *
      (kPelCostShare + kBitCostShare * p.bits_per_mb / kRefBitsPerMb);
  return p;
}

std::string_view admission_decision_name(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kQueue:
      return "queue";
    case AdmissionDecision::kReject:
      return "reject";
  }
  return "?";
}

AdmissionDecision AdmissionController::decide(
    const StreamLoadProfile& p) const {
  if (!p.valid) return AdmissionDecision::kReject;
  // Work-conserving: an idle server always admits, even a stream whose
  // predicted load alone exceeds capacity — otherwise such a stream could
  // wait forever on a capacity that will never be free enough.
  if (fits(p) || running_ == 0) return AdmissionDecision::kAdmit;
  if (config_.max_queued > 0 && queued_ < config_.max_queued) {
    return AdmissionDecision::kQueue;
  }
  return AdmissionDecision::kReject;
}

}  // namespace pmp2::serve
