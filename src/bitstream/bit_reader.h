// MSB-first bit reader over an in-memory byte buffer.
//
// This is the decoder's only access path to the elementary stream, so it is
// designed for the access pattern of MPEG VLC decoding: cheap peek of up to
// 32 bits (to index Huffman tables) followed by a skip of the consumed code
// length. Reads past the end of the buffer return zero bits and set an
// overrun flag rather than throwing, matching how a real decoder treats a
// truncated stream (it notices at the next startcode check).
//
// Hot-path design: the reader caches a 64-bit window of the stream starting
// at the byte containing the current position. While the window covers the
// requested bits, peek() is a shift and a mask; the window is refilled with
// a single 8-byte load when at least 8 bytes remain (a byte-wise gather with
// zero fill runs only within 8 bytes of the buffer tail). skip() and the
// seek_* functions just move the bit position — window validity is
// re-checked against the position on the next peek, so seeking in either
// direction is always safe.
//
// Bit-extraction edge cases (tested in bitstream_test.cpp), handled here
// once so callers and table builders never re-derive them:
//  * n == 0  returns 0 without touching the window (a 64-bit shift by
//    64 - offset - 0 could be a shift by 64, which is undefined).
//  * n == 32 is the widest peek; the mask (1ULL << n) - 1 is computed in
//    64 bits, so it is exactly 0xFFFFFFFF rather than the zero that a
//    32-bit 1u << 32 would produce.
//  * Peeks straddling the final byte (or entirely past the end) read the
//    missing bytes as zero; only *consuming* past the end sets overrun().
#pragma once

#include <cstdint>
#include <span>

namespace pmp2 {

class BitReader {
 public:
  BitReader() = default;
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Returns the next `n` bits (0 <= n <= 32) without consuming them,
  /// MSB-aligned to the low bits of the result.
  [[nodiscard]] std::uint32_t peek(int n) const {
    if (n == 0) return 0;
    if (bitpos_ < window_start_ || bitpos_ + static_cast<unsigned>(n) >
                                       window_start_ + 64) {
      refill();
    }
    // After refill the window starts at the current byte, so
    // offset <= 7 and offset + n <= 39 < 64: the shift is never negative.
    const int shift =
        64 - static_cast<int>(bitpos_ - window_start_) - n;
    return static_cast<std::uint32_t>((window_ >> shift) &
                                      ((1ULL << n) - 1));
  }

  /// Consumes `n` bits (0 <= n <= 32).
  void skip(int n) {
    bitpos_ += static_cast<std::uint64_t>(n);
    if (bitpos_ > static_cast<std::uint64_t>(data_.size()) * 8) {
      overrun_ = true;
    }
  }

  /// Reads and consumes `n` bits.
  std::uint32_t get(int n) {
    const std::uint32_t v = peek(n);
    skip(n);
    return v;
  }

  /// Reads one bit.
  std::uint32_t get_bit() { return get(1); }

  /// Discards bits up to the next byte boundary.
  void byte_align() {
    if (offset_in_byte() != 0) bitpos_ = (bitpos_ & ~std::uint64_t{7}) + 8;
  }

  [[nodiscard]] bool byte_aligned() const { return offset_in_byte() == 0; }

  /// Absolute position in bits from the start of the buffer.
  [[nodiscard]] std::uint64_t bit_position() const { return bitpos_; }

  /// Repositions to an absolute bit offset.
  void seek_bits(std::uint64_t bitpos) { bitpos_ = bitpos; }

  /// Repositions to an absolute byte offset.
  void seek_bytes(std::uint64_t byte) { bitpos_ = byte * 8; }

  /// Number of bits remaining before the end of the buffer.
  [[nodiscard]] std::uint64_t bits_left() const {
    const std::uint64_t total = static_cast<std::uint64_t>(data_.size()) * 8;
    return bitpos_ >= total ? 0 : total - bitpos_;
  }

  /// True once reads have *consumed* bits past the end of the buffer
  /// (peeks past the end read as zero and are not an error).
  [[nodiscard]] bool overrun() const { return overrun_; }

  /// True iff the next 24 bits (byte aligned) are the startcode prefix
  /// 0x000001. Does not consume anything.
  [[nodiscard]] bool at_startcode_prefix() const {
    return byte_aligned() && bits_left() >= 32 && peek(24) == 0x000001;
  }

  /// Advances to the next byte-aligned startcode prefix at or after the
  /// current position and returns true, or returns false at end of stream.
  bool align_to_next_startcode();

  [[nodiscard]] std::span<const std::uint8_t> data() const { return data_; }

 private:
  [[nodiscard]] int offset_in_byte() const {
    return static_cast<int>(bitpos_ & 7);
  }

  /// Loads the 8 bytes starting at the byte containing bitpos_ into
  /// window_ (big-endian bit order), zero-filling past the buffer end.
  void refill() const;

  std::span<const std::uint8_t> data_;
  std::uint64_t bitpos_ = 0;
  bool overrun_ = false;
  // Cached stream window: 64 bits starting at absolute bit window_start_,
  // MSB first. The sentinel start makes the very first peek refill.
  // Mutable: the cache is logically const state (peek is observably pure).
  mutable std::uint64_t window_ = 0;
  mutable std::uint64_t window_start_ = ~std::uint64_t{0};
};

}  // namespace pmp2
