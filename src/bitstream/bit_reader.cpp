#include "bitstream/bit_reader.h"

#include <bit>
#include <cstring>

namespace pmp2 {

void BitReader::refill() const {
  const std::uint64_t byte = bitpos_ >> 3;
  std::uint64_t w;
  if (byte + 8 <= data_.size()) {
    // Fast path: one unaligned 8-byte load, swapped to stream bit order.
    std::memcpy(&w, data_.data() + byte, 8);
    if constexpr (std::endian::native == std::endian::little) {
      w = __builtin_bswap64(w);
    }
  } else {
    // Within 8 bytes of the tail (or past it): gather what exists, reading
    // missing bytes as zero. A decoder peeking a wide window at the last
    // code of a stream is normal; only consuming past the end is an error
    // (see skip()).
    w = 0;
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t idx = byte + static_cast<std::uint64_t>(i);
      const std::uint8_t b = idx < data_.size() ? data_[idx] : 0;
      w = (w << 8) | b;
    }
  }
  window_ = w;
  window_start_ = byte * 8;
}

bool BitReader::align_to_next_startcode() {
  byte_align();
  std::uint64_t byte = bitpos_ >> 3;
  // Scan for 0x00 0x00 0x01; need one more byte for the code itself.
  while (byte + 3 < data_.size()) {
    if (data_[byte] == 0 && data_[byte + 1] == 0 && data_[byte + 2] == 1) {
      bitpos_ = byte * 8;
      return true;
    }
    // Skip ahead: if data_[byte+2] != 0 and != 1, no prefix can start at
    // byte or byte+1 or byte+2.
    if (data_[byte + 2] > 1) {
      byte += 3;
    } else {
      ++byte;
    }
  }
  bitpos_ = static_cast<std::uint64_t>(data_.size()) * 8;
  return false;
}

}  // namespace pmp2
