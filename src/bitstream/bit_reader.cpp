#include "bitstream/bit_reader.h"

#include <bit>
#include <cstring>

#include "bitstream/startcode.h"

namespace pmp2 {

void BitReader::refill() const {
  const std::uint64_t byte = bitpos_ >> 3;
  std::uint64_t w;
  if (byte + 8 <= data_.size()) {
    // Fast path: one unaligned 8-byte load, swapped to stream bit order.
    std::memcpy(&w, data_.data() + byte, 8);
    if constexpr (std::endian::native == std::endian::little) {
      w = __builtin_bswap64(w);
    }
  } else {
    // Within 8 bytes of the tail (or past it): gather what exists, reading
    // missing bytes as zero. A decoder peeking a wide window at the last
    // code of a stream is normal; only consuming past the end is an error
    // (see skip()).
    w = 0;
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t idx = byte + static_cast<std::uint64_t>(i);
      const std::uint8_t b = idx < data_.size() ? data_[idx] : 0;
      w = (w << 8) | b;
    }
  }
  window_ = w;
  window_start_ = byte * 8;
}

bool BitReader::align_to_next_startcode() {
  byte_align();
  // Shared SWAR scan kernel (needs one more byte for the code itself).
  const std::uint64_t byte = find_startcode_prefix(data_, bitpos_ >> 3);
  bitpos_ = byte * 8;
  return byte < data_.size();
}

}  // namespace pmp2
