#include "bitstream/bit_reader.h"

namespace pmp2 {

std::uint32_t BitReader::peek(int n) const {
  if (n == 0) return 0;
  // Gather up to 8 bytes around the current position into a 64-bit window
  // so any 32-bit peek is a shift+mask. Bits past the end of the buffer
  // read as zero (a decoder peeking a wide window at the last code of a
  // stream is normal); only *consuming* past the end sets the overrun flag
  // (see skip()).
  const std::uint64_t byte = bitpos_ >> 3;
  std::uint64_t window = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t idx = byte + static_cast<std::uint64_t>(i);
    const std::uint8_t b = idx < data_.size() ? data_[idx] : 0;
    window = (window << 8) | b;
  }
  const int shift = 64 - offset_in_byte() - n;
  return static_cast<std::uint32_t>((window >> shift) &
                                    ((n == 32) ? 0xFFFFFFFFULL
                                               : ((1ULL << n) - 1)));
}

void BitReader::skip(int n) {
  bitpos_ += static_cast<std::uint64_t>(n);
  if (bitpos_ > static_cast<std::uint64_t>(data_.size()) * 8) {
    overrun_ = true;
  }
}

bool BitReader::align_to_next_startcode() {
  byte_align();
  std::uint64_t byte = bitpos_ >> 3;
  // Scan for 0x00 0x00 0x01; need one more byte for the code itself.
  while (byte + 3 < data_.size()) {
    if (data_[byte] == 0 && data_[byte + 1] == 0 && data_[byte + 2] == 1) {
      bitpos_ = byte * 8;
      return true;
    }
    // Skip ahead: if data_[byte+2] != 0 and != 1, no prefix can start at
    // byte or byte+1 or byte+2.
    if (data_[byte + 2] > 1) {
      byte += 3;
    } else {
      ++byte;
    }
  }
  bitpos_ = static_cast<std::uint64_t>(data_.size()) * 8;
  return false;
}

}  // namespace pmp2
