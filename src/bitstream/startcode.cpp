#include "bitstream/startcode.h"

namespace pmp2 {

std::string_view startcode_name(std::uint8_t code) {
  if (is_slice_code(code)) return "slice";
  switch (static_cast<StartcodeKind>(code)) {
    case StartcodeKind::kPicture: return "picture";
    case StartcodeKind::kUserData: return "user_data";
    case StartcodeKind::kSequenceHeader: return "sequence_header";
    case StartcodeKind::kSequenceError: return "sequence_error";
    case StartcodeKind::kExtension: return "extension";
    case StartcodeKind::kSequenceEnd: return "sequence_end";
    case StartcodeKind::kGroup: return "group";
    default: return "reserved";
  }
}

bool StartcodeScanner::next(Startcode& out) {
  std::uint64_t i = pos_;
  while (i + 3 < data_.size()) {
    if (data_[i] == 0 && data_[i + 1] == 0 && data_[i + 2] == 1) {
      out.byte_offset = i;
      out.code = data_[i + 3];
      pos_ = i + 4;
      return true;
    }
    // data_[i+2] > 1 rules out a prefix starting at i, i+1, or i+2.
    i += (data_[i + 2] > 1) ? 3 : 1;
  }
  pos_ = data_.size();
  return false;
}

std::vector<Startcode> scan_all_startcodes(
    std::span<const std::uint8_t> data) {
  std::vector<Startcode> out;
  StartcodeScanner scanner(data);
  Startcode sc;
  while (scanner.next(sc)) out.push_back(sc);
  return out;
}

}  // namespace pmp2
