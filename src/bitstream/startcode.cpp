#include "bitstream/startcode.h"

#include <bit>
#include <cstring>

namespace pmp2 {

std::string_view startcode_name(std::uint8_t code) {
  if (is_slice_code(code)) return "slice";
  switch (static_cast<StartcodeKind>(code)) {
    case StartcodeKind::kPicture: return "picture";
    case StartcodeKind::kUserData: return "user_data";
    case StartcodeKind::kSequenceHeader: return "sequence_header";
    case StartcodeKind::kSequenceError: return "sequence_error";
    case StartcodeKind::kExtension: return "extension";
    case StartcodeKind::kSequenceEnd: return "sequence_end";
    case StartcodeKind::kGroup: return "group";
    default: return "reserved";
  }
}

std::uint64_t find_startcode_prefix(std::span<const std::uint8_t> data,
                                    std::uint64_t from) {
  const std::uint8_t* const d = data.data();
  const std::uint64_t n = data.size();
  std::uint64_t i = from;
  if constexpr (std::endian::native == std::endian::little) {
    constexpr std::uint64_t kLows = 0x0101010101010101ULL;
    constexpr std::uint64_t kHighs = 0x8080808080808080ULL;
    while (i + 8 <= n) {
      std::uint64_t v;
      std::memcpy(&v, d + i, 8);  // memcpy: UBSan-clean unaligned load
      std::uint64_t hits = (v - kLows) & ~v & kHighs;
      if (hits == 0) {
        // No zero byte in the window, so no prefix starts here.
        i += 8;
        continue;
      }
      // countr_zero walks candidates low-address-first (byte k of the
      // little-endian load is d[i + k]).
      do {
        const std::uint64_t p =
            i + (static_cast<std::uint64_t>(std::countr_zero(hits)) >> 3);
        if (p + 3 < n && d[p] == 0 && d[p + 1] == 0 && d[p + 2] == 1) {
          return p;
        }
        hits &= hits - 1;
      } while (hits != 0);
      i += 8;
    }
  }
  // Head on big-endian hosts and the last < 8 bytes everywhere: the seed
  // byte loop (d[i+2] > 1 rules out a prefix starting at i, i+1 or i+2).
  while (i + 3 < n) {
    if (d[i] == 0 && d[i + 1] == 0 && d[i + 2] == 1) return i;
    i += (d[i + 2] > 1) ? 3 : 1;
  }
  return n;
}

bool StartcodeScanner::next(Startcode& out) {
  const std::uint64_t i = find_startcode_prefix(data_, pos_);
  if (i >= data_.size()) {
    pos_ = data_.size();
    return false;
  }
  out.byte_offset = i;
  out.code = data_[i + 3];
  pos_ = i + 4;
  return true;
}

std::vector<Startcode> scan_all_startcodes(
    std::span<const std::uint8_t> data) {
  std::vector<Startcode> out;
  // Coded MPEG-2 video runs a few hundred bytes per startcode (a slice of
  // SIF at 1.5 Mb/s is ~400 bytes); reserving at 1/512 avoids the growth
  // reallocations without overshooting on denser streams.
  out.reserve(data.size() / 512 + 8);
  StartcodeScanner scanner(data);
  Startcode sc;
  while (scanner.next(sc)) out.push_back(sc);
  return out;
}

}  // namespace pmp2
