// Incremental elementary-stream demultiplexer.
//
// StreamDemux yields startcode-delimited units one at a time instead of
// materializing the whole index upfront (scan_all_startcodes). It keeps a
// one-startcode lookahead so every unit is delivered with its byte extent:
// the payload of unit k ends where startcode k+1 begins (or at end of
// stream). The streaming front-end of the parallel decoders is built on
// this: the scan process consumes units, emits GOP tasks as soon as their
// last byte is known, and never re-walks bytes the scanner has passed.
#pragma once

#include <cstdint>
#include <span>

#include "bitstream/startcode.h"

namespace pmp2 {

/// One demultiplexed unit: a startcode plus the extent of its payload.
struct DemuxUnit {
  Startcode sc;
  std::uint64_t end_offset = 0;  // offset of the next startcode (or size())

  friend bool operator==(const DemuxUnit&, const DemuxUnit&) = default;
};

/// Forward-only incremental demultiplexer over an in-memory stream.
class StreamDemux {
 public:
  explicit StreamDemux(std::span<const std::uint8_t> data);

  /// Yields the next unit; false at end of stream.
  bool next(DemuxUnit& out);

  /// Byte position the demux has fully consumed: everything before the
  /// held-back lookahead startcode (stream size once drained). This is the
  /// quantity the scan process reports as its progress.
  [[nodiscard]] std::uint64_t position() const {
    return have_lookahead_ ? lookahead_.byte_offset : data_.size();
  }

 private:
  std::span<const std::uint8_t> data_;
  StartcodeScanner scanner_;
  Startcode lookahead_;
  bool have_lookahead_ = false;
};

}  // namespace pmp2
