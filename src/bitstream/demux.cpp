#include "bitstream/demux.h"

namespace pmp2 {

StreamDemux::StreamDemux(std::span<const std::uint8_t> data)
    : data_(data), scanner_(data) {
  have_lookahead_ = scanner_.next(lookahead_);
}

bool StreamDemux::next(DemuxUnit& out) {
  if (!have_lookahead_) return false;
  out.sc = lookahead_;
  have_lookahead_ = scanner_.next(lookahead_);
  out.end_offset = have_lookahead_ ? lookahead_.byte_offset : data_.size();
  return true;
}

}  // namespace pmp2
