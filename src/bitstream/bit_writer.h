// MSB-first bit writer used by the encoder and by header/VLC round-trip
// tests. Appends to an internal byte vector.
#pragma once

#include <cstdint>
#include <vector>

namespace pmp2 {

class BitWriter {
 public:
  /// Appends the low `n` bits of `value` (0 <= n <= 32), MSB first.
  void put(std::uint32_t value, int n);

  void put_bit(std::uint32_t bit) { put(bit, 1); }

  /// Pads with zero bits to the next byte boundary.
  void byte_align();

  /// Pads to byte alignment and appends the 32-bit startcode
  /// 0x000001'code'.
  void put_startcode(std::uint8_t code);

  [[nodiscard]] bool byte_aligned() const { return pending_bits_ == 0; }

  /// Total bits written so far.
  [[nodiscard]] std::uint64_t bit_count() const {
    return static_cast<std::uint64_t>(bytes_.size()) * 8 + pending_bits_;
  }

  /// Finishes the current partial byte (zero padding) and returns the
  /// buffer. The writer remains usable.
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() {
    byte_align();
    return bytes_;
  }

  /// Moves the buffer out, resetting the writer.
  [[nodiscard]] std::vector<std::uint8_t> take() {
    byte_align();
    auto out = std::move(bytes_);
    bytes_.clear();
    return out;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint32_t pending_ = 0;  // bits accumulated in the current byte, MSB side
  int pending_bits_ = 0;       // 0..7
};

}  // namespace pmp2
