#include "bitstream/bit_writer.h"

namespace pmp2 {

void BitWriter::put(std::uint32_t value, int n) {
  while (n > 0) {
    const int room = 8 - pending_bits_;
    const int take = n < room ? n : room;
    const std::uint32_t chunk =
        (n >= 32 && take == 32)
            ? value
            : (value >> (n - take)) & ((1u << take) - 1);
    pending_ = (pending_ << take) | chunk;
    pending_bits_ += take;
    n -= take;
    if (pending_bits_ == 8) {
      bytes_.push_back(static_cast<std::uint8_t>(pending_));
      pending_ = 0;
      pending_bits_ = 0;
    }
  }
}

void BitWriter::byte_align() {
  if (pending_bits_ != 0) put(0, 8 - pending_bits_);
}

void BitWriter::put_startcode(std::uint8_t code) {
  byte_align();
  put(0x000001, 24);
  put(code, 8);
}

}  // namespace pmp2
