// Byte-aligned MPEG-2 startcode identification and scanning.
//
// The scan process of both parallel decoders (paper Fig. 4) is built on
// StartcodeScanner: it walks the elementary stream once, emitting the byte
// offset and kind of every startcode, from which GOP and picture/slice task
// boundaries are derived without doing any VLC decoding.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace pmp2 {

/// MPEG-2 startcode values (the byte following the 0x000001 prefix).
enum class StartcodeKind : std::uint8_t {
  kPicture = 0x00,          // picture_start_code
  kSliceFirst = 0x01,       // slice_start_code range begin
  kSliceLast = 0xAF,        // slice_start_code range end
  kUserData = 0xB2,         // user_data_start_code
  kSequenceHeader = 0xB3,   // sequence_header_code
  kSequenceError = 0xB4,    // sequence_error_code
  kExtension = 0xB5,        // extension_start_code
  kSequenceEnd = 0xB7,      // sequence_end_code
  kGroup = 0xB8,            // group_start_code
};

/// True for any slice_start_code (0x01..0xAF).
[[nodiscard]] constexpr bool is_slice_code(std::uint8_t code) {
  return code >= 0x01 && code <= 0xAF;
}

/// Human-readable name for diagnostics (e.g. the stream_info example).
[[nodiscard]] std::string_view startcode_name(std::uint8_t code);

/// One located startcode: byte offset of the 0x000001 prefix plus the code.
struct Startcode {
  std::uint64_t byte_offset = 0;
  std::uint8_t code = 0;

  friend bool operator==(const Startcode&, const Startcode&) = default;
};

/// Finds the lowest byte offset >= `from` at which a complete startcode
/// begins: a 00 00 01 prefix with at least one code byte after it. Returns
/// data.size() when there is none. This is the scan kernel shared by
/// StartcodeScanner, BitReader::align_to_next_startcode and the demux, so
/// no caller re-walks bytes with its own byte-at-a-time loop.
///
/// Fast path: 8 bytes per step with the SWAR zero-byte test
/// (v - 0x01..01) & ~v & 0x80..80, which flags every zero byte (and, via
/// borrow propagation, occasionally a 0x01 after a zero — candidates are
/// therefore always re-verified against all three prefix bytes, which also
/// handles prefixes straddling the 8-byte window edge). A window with no
/// zero byte cannot contain the start of a prefix, so it is skipped whole.
[[nodiscard]] std::uint64_t find_startcode_prefix(
    std::span<const std::uint8_t> data, std::uint64_t from);

/// Forward-only scanner over an in-memory stream.
class StartcodeScanner {
 public:
  explicit StartcodeScanner(std::span<const std::uint8_t> data)
      : data_(data) {}

  /// Finds the next startcode at or after `from` (byte offset). Returns
  /// false at end of stream. On success the scanner's position is just past
  /// the returned startcode's 4 bytes.
  bool next(Startcode& out);

  /// Current byte position of the scanner.
  [[nodiscard]] std::uint64_t position() const { return pos_; }

  void seek(std::uint64_t byte_offset) { pos_ = byte_offset; }

 private:
  std::span<const std::uint8_t> data_;
  std::uint64_t pos_ = 0;
};

/// Scans the whole stream and returns every startcode, in order.
[[nodiscard]] std::vector<Startcode> scan_all_startcodes(
    std::span<const std::uint8_t> data);

}  // namespace pmp2
