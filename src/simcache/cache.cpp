#include "simcache/cache.h"

#include <algorithm>
#include <cassert>

namespace pmp2::simcache {

MissStats& MissStats::operator+=(const MissStats& o) {
  reads += o.reads;
  writes += o.writes;
  read_misses += o.read_misses;
  write_misses += o.write_misses;
  cold += o.cold;
  read_cold += o.read_cold;
  read_capacity += o.read_capacity;
  read_conflict += o.read_conflict;
  true_sharing += o.true_sharing;
  false_sharing += o.false_sharing;
  return *this;
}

Cache::Cache(const CacheConfig& config)
    : config_(config),
      fa_(config.associativity == 0),
      ways_per_set_(config.associativity == 0 ? config.num_lines()
                                              : config.associativity) {
  assert((config.line_bytes & (config.line_bytes - 1)) == 0);
  if (!fa_) {
    ways_.resize(static_cast<std::size_t>(config_.num_sets()) *
                 static_cast<std::size_t>(ways_per_set_));
  }
}

bool Cache::contains(std::uint64_t line_addr) const {
  const std::uint64_t line = line_addr / config_.line_bytes;
  if (fa_) return shadow_map_.count(line) != 0;
  const int set =
      static_cast<int>(line % static_cast<std::uint64_t>(config_.num_sets()));
  const std::size_t base =
      static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_per_set_);
  for (int w = 0; w < ways_per_set_; ++w) {
    if (ways_[base + static_cast<std::size_t>(w)].valid &&
        ways_[base + static_cast<std::size_t>(w)].line == line) {
      return true;
    }
  }
  return false;
}

void Cache::shadow_touch(std::uint64_t line, bool& was_present) {
  auto it = shadow_map_.find(line);
  if (it != shadow_map_.end()) {
    was_present = true;
    shadow_lru_.erase(it->second);
  } else {
    was_present = false;
    if (static_cast<int>(shadow_map_.size()) >= config_.num_lines()) {
      shadow_map_.erase(shadow_lru_.back());
      shadow_lru_.pop_back();
    }
  }
  shadow_lru_.push_front(line);
  shadow_map_[line] = shadow_lru_.begin();
}

void Cache::touch_line(std::uint64_t line_addr, std::uint64_t addr, int size,
                       bool write) {
  const std::uint64_t line = line_addr / config_.line_bytes;
  ++tick_;

  if (fa_) {
    // Fully associative: the LRU map IS the cache (conflict misses are
    // impossible by definition).
    bool was_present = false;
    shadow_touch(line, was_present);
    if (was_present) return;  // hit
    if (write) {
      ++stats_.write_misses;
    } else {
      ++stats_.read_misses;
    }
    const bool cold = seen_.insert(line).second;
    const auto inv = invalidated_.find(line);
    if (cold) {
      ++stats_.cold;
      if (!write) ++stats_.read_cold;
    } else if (inv != invalidated_.end()) {
      const std::uint64_t w_lo = inv->second.write_addr;
      const std::uint64_t w_hi =
          w_lo + static_cast<std::uint64_t>(inv->second.write_size);
      const std::uint64_t a_lo = addr;
      const std::uint64_t a_hi = addr + static_cast<std::uint64_t>(size);
      if (a_lo < w_hi && w_lo < a_hi) {
        ++stats_.true_sharing;
      } else {
        ++stats_.false_sharing;
      }
    } else if (!write) {
      ++stats_.read_capacity;
    }
    if (inv != invalidated_.end()) invalidated_.erase(inv);
    return;
  }

  const int set =
      static_cast<int>(line % static_cast<std::uint64_t>(config_.num_sets()));
  const std::size_t base =
      static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_per_set_);

  // Look for a hit.
  for (int w = 0; w < ways_per_set_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.line == line) {
      way.lru = tick_;
      bool unused;
      shadow_touch(line, unused);
      return;
    }
  }

  // Miss: classify.
  if (write) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }
  const bool cold = seen_.insert(line).second;
  bool in_shadow = false;
  shadow_touch(line, in_shadow);
  const auto inv = invalidated_.find(line);
  if (cold) {
    ++stats_.cold;
    if (!write) ++stats_.read_cold;
  } else if (inv != invalidated_.end()) {
    // Coherence miss: true sharing iff the reload touches bytes the remote
    // writer wrote.
    const std::uint64_t w_lo = inv->second.write_addr;
    const std::uint64_t w_hi = w_lo + static_cast<std::uint64_t>(
                                          inv->second.write_size);
    const std::uint64_t a_lo = addr;
    const std::uint64_t a_hi = addr + static_cast<std::uint64_t>(size);
    if (a_lo < w_hi && w_lo < a_hi) {
      ++stats_.true_sharing;
    } else {
      ++stats_.false_sharing;
    }
  } else if (!write) {
    if (in_shadow) {
      ++stats_.read_conflict;
    } else {
      ++stats_.read_capacity;
    }
  }
  if (inv != invalidated_.end()) invalidated_.erase(inv);

  // Fill: evict LRU way.
  std::size_t victim = base;
  for (int w = 1; w < ways_per_set_; ++w) {
    const Way& cand = ways_[base + static_cast<std::size_t>(w)];
    if (!cand.valid) {
      victim = base + static_cast<std::size_t>(w);
      break;
    }
    if (cand.lru < ways_[victim].lru) {
      victim = base + static_cast<std::size_t>(w);
    }
  }
  if (!ways_[base].valid) victim = base;
  ways_[victim] = {line, tick_, true};
}

int Cache::access(std::uint64_t addr, int size, bool write) {
  if (write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  const std::uint64_t mask = ~static_cast<std::uint64_t>(config_.line_bytes - 1);
  const std::uint64_t first = addr & mask;
  const std::uint64_t last =
      (addr + static_cast<std::uint64_t>(size) - 1) & mask;
  const std::uint64_t misses_before = stats_.read_misses + stats_.write_misses;
  for (std::uint64_t la = first; la <= last;
       la += static_cast<std::uint64_t>(config_.line_bytes)) {
    // Byte range of this access within this line.
    const std::uint64_t lo = std::max(addr, la);
    const std::uint64_t hi = std::min(
        addr + static_cast<std::uint64_t>(size),
        la + static_cast<std::uint64_t>(config_.line_bytes));
    touch_line(la, lo, static_cast<int>(hi - lo), write);
  }
  return static_cast<int>(stats_.read_misses + stats_.write_misses -
                          misses_before);
}

void Cache::invalidate(std::uint64_t line_addr, std::uint64_t write_addr,
                       int write_size) {
  const std::uint64_t line = line_addr / config_.line_bytes;
  if (fa_) {
    const auto it = shadow_map_.find(line);
    if (it != shadow_map_.end()) {
      shadow_lru_.erase(it->second);
      shadow_map_.erase(it);
      invalidated_[line] = {write_addr, write_size};
    }
    return;
  }
  const int set =
      static_cast<int>(line % static_cast<std::uint64_t>(config_.num_sets()));
  const std::size_t base =
      static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_per_set_);
  for (int w = 0; w < ways_per_set_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.valid && way.line == line) {
      way.valid = false;
      invalidated_[line] = {write_addr, write_size};
      return;
    }
  }
}

MultiCacheSim::MultiCacheSim(int processors, const CacheConfig& config)
    : line_bytes_(config.line_bytes) {
  caches_.reserve(static_cast<std::size_t>(processors));
  for (int p = 0; p < processors; ++p) caches_.emplace_back(config);
}

void MultiCacheSim::on_ref(const mpeg2::MemRef& ref) {
  assert(ref.proc < caches_.size());
  Cache& own = caches_[ref.proc];
  own.access(ref.addr, ref.size, ref.write);
  if (ref.write) {
    // MSI snoop: a write invalidates every other copy.
    const std::uint64_t mask =
        ~static_cast<std::uint64_t>(line_bytes_ - 1);
    const std::uint64_t first = ref.addr & mask;
    const std::uint64_t last =
        (ref.addr + static_cast<std::uint64_t>(ref.size) - 1) & mask;
    for (std::size_t p = 0; p < caches_.size(); ++p) {
      if (p == ref.proc) continue;
      for (std::uint64_t la = first; la <= last;
           la += static_cast<std::uint64_t>(line_bytes_)) {
        caches_[p].invalidate(la, ref.addr, ref.size);
      }
    }
  }
}

MissStats MultiCacheSim::total_stats() const {
  MissStats out;
  for (const auto& c : caches_) out += c.stats();
  return out;
}

}  // namespace pmp2::simcache
