// Deterministic decode-trace generation for the locality study (§5.3).
//
// The paper drove its memory-system simulator from TangoLite-simulated
// executions: the GOP version on one processor, the slice version on eight.
// Here the decoder runs once per stream, emitting its logical reference
// trace with a deterministic processor assignment: `procs == 1` assigns
// everything to processor 0 (the GOP-version trace — a worker decoding its
// own GOP sees exactly a sequential decode); `procs > 1` deals slices of
// each picture round-robin across processors (the slice-version dynamic
// assignment, which is what creates inter-processor communication on
// reference-picture reads).
#pragma once

#include <cstdint>
#include <span>

#include "mpeg2/trace.h"

namespace pmp2::simcache {

/// How slices map to processors in the generated trace.
enum class SliceAssignment {
  /// Deterministic hash of (picture, slice): models the dynamic task queue,
  /// where a slice lands on whichever worker is free — so reference-picture
  /// reads regularly hit rows another processor wrote (the communication
  /// the paper describes in §5.2). Default.
  kDynamic,
  /// slice % procs: perfectly aligned across pictures; readers mostly re-read
  /// their own writes. Useful as a locality-aware-assignment ablation
  /// (the §7.2 discussion).
  kRoundRobin,
};

struct TraceOptions {
  int procs = 1;
  int max_pictures = 0;  // 0 = whole stream
  SliceAssignment assignment = SliceAssignment::kDynamic;
  /// true: recycle a small pool of frame buffers, the slice decoder's
  /// behaviour ("at most three pictures in memory") — required to observe
  /// coherence misses, which need a processor to re-touch lines it cached
  /// before. false: fresh buffers per picture, the GOP decoder's behaviour
  /// (its Fig. 8 memory growth), making first writes cold misses.
  bool pooled_buffers = true;
};

/// Decodes the stream, emitting all references to `sink`. Returns false on
/// a malformed stream.
bool generate_decode_trace(std::span<const std::uint8_t> stream,
                           mpeg2::TraceSink& sink,
                           const TraceOptions& options);

/// Convenience overload: `procs` workers, defaults otherwise.
bool generate_decode_trace(std::span<const std::uint8_t> stream, int procs,
                           mpeg2::TraceSink& sink, int max_pictures = 0);

}  // namespace pmp2::simcache
