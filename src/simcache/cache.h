// Memory-system simulator: set-associative LRU caches with full miss
// classification, and a snooping MSI multi-cache with sharing-miss
// classification. Substitute for the paper's TangoLite + memory-system
// simulator (§5.3); consumes the decoder's logical reference traces.
//
// Miss taxonomy (per processor):
//   cold      — first access to the line by this cache
//   coherence — line was invalidated by another processor's write;
//               split into true sharing (the reload touches bytes the
//               writer wrote) and false sharing (it does not)
//   capacity  — misses in a fully-associative LRU cache of equal size
//   conflict  — hits in the fully-associative shadow but missed here
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mpeg2/trace.h"

namespace pmp2::simcache {

struct CacheConfig {
  std::int64_t size_bytes = 1 << 20;
  int line_bytes = 64;
  /// Ways per set; 0 = fully associative.
  int associativity = 1;

  [[nodiscard]] int num_lines() const {
    return static_cast<int>(size_bytes / line_bytes);
  }
  [[nodiscard]] int num_sets() const {
    return associativity == 0 ? 1 : num_lines() / associativity;
  }
};

struct MissStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t cold = 0;        // read+write cold misses
  std::uint64_t read_cold = 0;
  std::uint64_t read_capacity = 0;
  std::uint64_t read_conflict = 0;
  std::uint64_t true_sharing = 0;
  std::uint64_t false_sharing = 0;

  [[nodiscard]] double read_miss_rate() const {
    return reads ? static_cast<double>(read_misses) / static_cast<double>(reads)
                 : 0.0;
  }
  MissStats& operator+=(const MissStats& o);
};

/// One processor's cache: set-associative LRU with a fully-associative
/// shadow directory for capacity/conflict classification.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Accesses [addr, addr+size); may span lines. Returns the number of
  /// missing lines touched.
  int access(std::uint64_t addr, int size, bool write);

  /// Invalidates a line if present (coherence). Records the writer's byte
  /// range for sharing classification.
  void invalidate(std::uint64_t line_addr, std::uint64_t write_addr,
                  int write_size);

  [[nodiscard]] bool contains(std::uint64_t line_addr) const;
  [[nodiscard]] const MissStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t line = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };
  struct Invalidation {
    std::uint64_t write_addr = 0;
    int write_size = 0;
  };

  void touch_line(std::uint64_t line_addr, std::uint64_t addr, int size,
                  bool write);
  void shadow_touch(std::uint64_t line_addr, bool& was_present);

  CacheConfig config_;
  bool fa_;                // fully associative: LRU map is the cache itself
  std::vector<Way> ways_;  // num_sets x associativity (set-assoc mode only)
  int ways_per_set_;
  std::uint64_t tick_ = 0;
  MissStats stats_;
  std::unordered_set<std::uint64_t> seen_;  // cold-miss tracking
  // Pending invalidations: line -> writer's byte range.
  std::unordered_map<std::uint64_t, Invalidation> invalidated_;
  // Fully-associative LRU shadow (same capacity) for capacity vs conflict.
  std::list<std::uint64_t> shadow_lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      shadow_map_;
};

/// Snooping MSI multi-processor cache system; implements TraceSink so it
/// can be attached directly to a decoder.
class MultiCacheSim : public mpeg2::TraceSink {
 public:
  MultiCacheSim(int processors, const CacheConfig& config);

  void on_ref(const mpeg2::MemRef& ref) override;

  [[nodiscard]] const MissStats& stats(int proc) const {
    return caches_[static_cast<std::size_t>(proc)].stats();
  }
  [[nodiscard]] MissStats total_stats() const;
  [[nodiscard]] int processors() const {
    return static_cast<int>(caches_.size());
  }

 private:
  std::vector<Cache> caches_;
  int line_bytes_;
};

/// Buffers a trace for replay against many cache geometries.
class TraceRecorder : public mpeg2::TraceSink {
 public:
  void on_ref(const mpeg2::MemRef& ref) override { refs_.push_back(ref); }
  [[nodiscard]] const std::vector<mpeg2::MemRef>& refs() const {
    return refs_;
  }
  void replay(mpeg2::TraceSink& sink) const {
    for (const auto& r : refs_) sink.on_ref(r);
  }

 private:
  std::vector<mpeg2::MemRef> refs_;
};

/// Fans one trace out to several sinks in a single pass.
class TraceTee : public mpeg2::TraceSink {
 public:
  void add(mpeg2::TraceSink* sink) { sinks_.push_back(sink); }
  void on_ref(const mpeg2::MemRef& ref) override {
    for (auto* s : sinks_) s->on_ref(ref);
  }

 private:
  std::vector<mpeg2::TraceSink*> sinks_;
};

}  // namespace pmp2::simcache
