#include "simcache/trace_gen.h"

#include <unordered_map>

#include "bitstream/bit_reader.h"
#include "mpeg2/decoder.h"

namespace pmp2::simcache {

bool generate_decode_trace(std::span<const std::uint8_t> stream, int procs,
                           mpeg2::TraceSink& sink, int max_pictures) {
  TraceOptions options;
  options.procs = procs;
  options.max_pictures = max_pictures;
  return generate_decode_trace(stream, sink, options);
}

bool generate_decode_trace(std::span<const std::uint8_t> stream,
                           mpeg2::TraceSink& sink,
                           const TraceOptions& options) {
  const int procs = options.procs;
  const int max_pictures = options.max_pictures;
  const SliceAssignment assignment = options.assignment;
  const mpeg2::StreamStructure structure = mpeg2::scan_structure(stream);
  if (!structure.valid || procs < 1) return false;

  mpeg2::FramePool pool(structure.seq.horizontal_size,
                        structure.seq.vertical_size);
  mpeg2::FramePtr fwd_ref, bwd_ref;
  int pictures = 0;
  // Run-local frame ids so traces are identical across runs regardless of
  // how many frames the process has allocated before. Fresh buffers get a
  // fresh id at allocation (the heap may reuse pointers, so lookups by
  // pointer are only valid while the frame is alive).
  std::unordered_map<const mpeg2::Frame*, int> local_ids;
  int next_id = 0;
  auto register_frame = [&](const mpeg2::Frame* f) {
    local_ids[f] = next_id;
    return next_id++;
  };
  // Pooled frames keep their id across reuse (same physical buffer).
  auto id_of_pooled = [&](const mpeg2::Frame* f) {
    const auto it = local_ids.find(f);
    if (it != local_ids.end()) return it->second;
    return register_frame(f);
  };
  auto id_of = [&local_ids](const mpeg2::Frame* f) {
    return local_ids.at(f);
  };

  for (const auto& gop : structure.gops) {
    for (const auto& info : gop.pictures) {
      if (max_pictures > 0 && pictures >= max_pictures) return true;
      pmp2::BitReader br(stream);
      br.seek_bytes(info.offset);
      mpeg2::PictureContext pic;
      pic.seq = &structure.seq;
      pic.mpeg1 = structure.mpeg1;
      if (!mpeg2::parse_picture_headers(br, pic.header, pic.ext)) {
        return false;
      }
      pic.mb_width = structure.mb_width();
      pic.mb_height = structure.mb_height();

      // Buffer policy: see TraceOptions::pooled_buffers.
      mpeg2::FramePtr dst;
      if (options.pooled_buffers) {
        dst = pool.acquire();
      } else {
        dst = std::make_shared<mpeg2::Frame>(structure.seq.horizontal_size,
                                             structure.seq.vertical_size);
      }
      pic.dst = dst.get();
      pic.dst_id = options.pooled_buffers ? id_of_pooled(dst.get())
                                          : register_frame(dst.get());
      if (pic.header.type != mpeg2::PictureType::kI) {
        const mpeg2::FramePtr& past =
            pic.header.type == mpeg2::PictureType::kP ? bwd_ref : fwd_ref;
        if (!past) return false;
        pic.fwd_ref = past.get();
        pic.fwd_id = id_of(past.get());
        if (pic.header.type == mpeg2::PictureType::kB) {
          pic.bwd_ref = bwd_ref.get();
          pic.bwd_id = id_of(bwd_ref.get());
        }
      }

      int slice_index = 0;
      for (const auto& slice : info.slices) {
        pmp2::BitReader sbr(stream);
        sbr.seek_bytes(slice.offset + 4);
        int proc;
        if (assignment == SliceAssignment::kRoundRobin) {
          proc = slice_index % procs;
        } else {
          // Deterministic hash: de-correlates the writer of a reference
          // row from its later readers, like the real dynamic queue.
          const std::uint32_t h =
              static_cast<std::uint32_t>(pictures) * 2654435761u +
              static_cast<std::uint32_t>(slice_index) * 2246822519u;
          proc = static_cast<int>((h >> 16) % static_cast<std::uint32_t>(procs));
        }
        const mpeg2::SliceResult r =
            mpeg2::decode_slice(sbr, slice.row, pic, &sink, proc);
        if (!r.ok) return false;
        ++slice_index;
      }

      if (pic.header.type != mpeg2::PictureType::kB) {
        fwd_ref = bwd_ref;
        bwd_ref = dst;
      }
      ++pictures;
    }
  }
  return true;
}

}  // namespace pmp2::simcache
