// Degradation measurement for fault-injection runs: how far a recovered
// decode drifted from the clean decode (docs/ROBUSTNESS.md).
#pragma once

#include "mpeg2/frame.h"

namespace pmp2::inject {

/// Luma PSNR (dB) between two frames of identical geometry, over the
/// display area only (the region the output checksums cover). Identical
/// frames return kPsnrIdentical.
inline constexpr double kPsnrIdentical = 99.0;
[[nodiscard]] double frame_psnr(const mpeg2::Frame& a, const mpeg2::Frame& b);

/// Streaming min/mean PSNR over a sequence of frame pairs.
class PsnrAccumulator {
 public:
  void add(const mpeg2::Frame& a, const mpeg2::Frame& b);

  [[nodiscard]] int frames() const { return frames_; }
  [[nodiscard]] int degraded_frames() const { return degraded_; }
  [[nodiscard]] double min_db() const {
    return frames_ ? min_db_ : kPsnrIdentical;
  }
  [[nodiscard]] double mean_db() const {
    return frames_ ? sum_db_ / frames_ : kPsnrIdentical;
  }

 private:
  int frames_ = 0;
  int degraded_ = 0;  // pairs below kPsnrIdentical
  double min_db_ = kPsnrIdentical;
  double sum_db_ = 0.0;
};

}  // namespace pmp2::inject
