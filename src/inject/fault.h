// Deterministic bitstream fault injection (docs/ROBUSTNESS.md).
//
// A FaultSpec names one reproducible corruption of an MPEG-2 elementary
// stream: the kind of damage, the seed driving every random choice, and a
// repetition count. apply_fault() is a pure function of (stream, spec), so
// any failure a fuzz run finds is replayable from the spec's name() alone.
//
// The corruptor is structure-aware just enough to be useful: it protects
// the stream preamble (sequence header through the first GOP header) so a
// fault exercises the slice/GOP recovery paths rather than trivially
// invalidating the whole stream, and the slice/startcode kinds pick their
// targets from a real startcode scan.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pmp2::inject {

enum class FaultKind : std::uint8_t {
  kBitFlip,            // flip `count` random payload bits
  kByteStomp,          // overwrite a short random run with random bytes
  kTruncate,           // cut the stream short at a random payload offset
  kDropBytes,          // remove a random byte range (packet loss)
  kDropSlice,          // remove one whole slice (startcode included)
  kSpuriousStartcode,  // write a fake slice/picture startcode mid-payload
  kClobberStartcode,   // damage a real startcode's 00 00 01 prefix
};

inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kBitFlip,          FaultKind::kByteStomp,
    FaultKind::kTruncate,         FaultKind::kDropBytes,
    FaultKind::kDropSlice,        FaultKind::kSpuriousStartcode,
    FaultKind::kClobberStartcode,
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);
/// Parses a kind name ("bitflip", "truncate", ...). False on unknown.
bool parse_fault_kind(std::string_view name, FaultKind& out);

/// One named, reproducible corruption.
struct FaultSpec {
  FaultKind kind = FaultKind::kBitFlip;
  std::uint64_t seed = 1;
  int count = 1;  // applications of the fault (kTruncate ignores it)

  /// Replay tag, e.g. "bitflip:seed=7:count=3".
  [[nodiscard]] std::string name() const;
};

/// One concrete change apply_fault made (byte coordinates of the damage,
/// in the coordinates of the *input* stream).
struct FaultEvent {
  FaultKind kind;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

struct FaultReport {
  std::vector<FaultEvent> events;
};

/// Applies `spec` to a copy of `stream` and returns it. Deterministic in
/// (stream, spec). The preamble (everything up to and including the first
/// GOP header's payload) is never damaged; a stream too short to have one
/// is returned unchanged. `report`, when non-null, receives what changed.
[[nodiscard]] std::vector<std::uint8_t> apply_fault(
    std::span<const std::uint8_t> stream, const FaultSpec& spec,
    FaultReport* report = nullptr);

/// Fuzzing schedule: a varied, deterministic FaultSpec for iteration `i`
/// of a run seeded with `base_seed` (cycles kinds, varies seeds/counts).
[[nodiscard]] FaultSpec plan_fault(std::uint64_t base_seed, std::uint64_t i);

}  // namespace pmp2::inject
