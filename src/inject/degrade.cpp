#include "inject/degrade.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "mpeg2/kernels/kernels.h"

namespace pmp2::inject {

double frame_psnr(const mpeg2::Frame& a, const mpeg2::Frame& b) {
  const int w = std::min(a.width(), b.width());
  const int h = std::min(a.height(), b.height());
  if (w <= 0 || h <= 0) return kPsnrIdentical;
  const std::uint64_t sse = mpeg2::kernels::active().sse_plane(
      a.plane(0), a.stride(0), b.plane(0), b.stride(0), w, h);
  if (sse == 0) return kPsnrIdentical;
  const double mse =
      static_cast<double>(sse) / (static_cast<double>(w) * h);
  return std::min(kPsnrIdentical, 10.0 * std::log10(255.0 * 255.0 / mse));
}

void PsnrAccumulator::add(const mpeg2::Frame& a, const mpeg2::Frame& b) {
  const double db = frame_psnr(a, b);
  ++frames_;
  if (db < kPsnrIdentical) ++degraded_;
  min_db_ = std::min(min_db_, db);
  sum_db_ += db;
}

}  // namespace pmp2::inject
