#include "inject/fault.h"

#include <algorithm>
#include <sstream>

#include "bitstream/startcode.h"
#include "util/rng.h"

namespace pmp2::inject {

namespace {

/// SplitMix64 finalizer: decorrelates the per-kind RNG streams so e.g.
/// bitflip:seed=1 and truncate:seed=1 do not damage the same offsets.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One past the last protected byte: the first GOP header plus its 8-byte
/// payload (startcode + time_code/closed/broken fields). 0 when the stream
/// has no GOP header (nothing safe to damage).
std::uint64_t protected_end(std::span<const std::uint8_t> stream) {
  StartcodeScanner scan(stream);
  Startcode sc;
  while (scan.next(sc)) {
    if (sc.code == static_cast<std::uint8_t>(StartcodeKind::kGroup)) {
      return std::min<std::uint64_t>(sc.byte_offset + 8, stream.size());
    }
  }
  return 0;
}

std::uint64_t pick_offset(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  // hi > lo; uniform in [lo, hi).
  return lo + rng.next_u64() % (hi - lo);
}

}  // namespace

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip: return "bitflip";
    case FaultKind::kByteStomp: return "stomp";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kDropBytes: return "drop-bytes";
    case FaultKind::kDropSlice: return "drop-slice";
    case FaultKind::kSpuriousStartcode: return "spurious-startcode";
    case FaultKind::kClobberStartcode: return "clobber-startcode";
  }
  return "unknown";
}

bool parse_fault_kind(std::string_view name, FaultKind& out) {
  for (const FaultKind kind : kAllFaultKinds) {
    if (fault_kind_name(kind) == name) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::string FaultSpec::name() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << ":seed=" << seed << ":count=" << count;
  return os.str();
}

std::vector<std::uint8_t> apply_fault(std::span<const std::uint8_t> stream,
                                      const FaultSpec& spec,
                                      FaultReport* report) {
  std::vector<std::uint8_t> out(stream.begin(), stream.end());
  const std::uint64_t lo = protected_end(stream);
  if (lo == 0 || lo >= stream.size()) return out;  // nothing safe to damage

  Rng rng(mix(spec.seed ^
              (0x9E3779B97F4A7C15ULL *
               (static_cast<std::uint64_t>(spec.kind) + 1))));
  auto note = [&](std::uint64_t offset, std::uint64_t length) {
    if (report) report->events.push_back({spec.kind, offset, length});
  };

  const int count = std::max(1, spec.count);
  switch (spec.kind) {
    case FaultKind::kBitFlip: {
      for (int i = 0; i < count; ++i) {
        const std::uint64_t off = pick_offset(rng, lo, out.size());
        out[off] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
        note(off, 1);
      }
      break;
    }
    case FaultKind::kByteStomp: {
      for (int i = 0; i < count; ++i) {
        const std::uint64_t off = pick_offset(rng, lo, out.size());
        const std::uint64_t len = std::min<std::uint64_t>(
            1 + rng.next_below(32), out.size() - off);
        for (std::uint64_t j = 0; j < len; ++j) {
          out[off + j] = static_cast<std::uint8_t>(rng.next_u64());
        }
        note(off, len);
      }
      break;
    }
    case FaultKind::kTruncate: {
      const std::uint64_t cut = pick_offset(rng, lo, out.size());
      note(cut, out.size() - cut);
      out.resize(cut);
      break;
    }
    case FaultKind::kDropBytes: {
      for (int i = 0; i < count; ++i) {
        if (out.size() <= lo + 1) break;
        const std::uint64_t off = pick_offset(rng, lo, out.size());
        const std::uint64_t len = std::min<std::uint64_t>(
            1 + rng.next_below(2048), out.size() - off);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(off),
                  out.begin() + static_cast<std::ptrdiff_t>(off + len));
        note(off, len);
      }
      break;
    }
    case FaultKind::kDropSlice: {
      for (int i = 0; i < count; ++i) {
        // Re-scan each round: earlier drops shift every later offset.
        const auto codes = scan_all_startcodes(out);
        std::vector<std::size_t> slices;
        for (std::size_t k = 0; k < codes.size(); ++k) {
          if (codes[k].byte_offset >= lo && is_slice_code(codes[k].code)) {
            slices.push_back(k);
          }
        }
        if (slices.empty()) break;
        const std::size_t k = slices[rng.next_below(
            static_cast<std::uint32_t>(slices.size()))];
        const std::uint64_t off = codes[k].byte_offset;
        const std::uint64_t end =
            k + 1 < codes.size() ? codes[k + 1].byte_offset : out.size();
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(off),
                  out.begin() + static_cast<std::ptrdiff_t>(end));
        note(off, end - off);
      }
      break;
    }
    case FaultKind::kSpuriousStartcode: {
      for (int i = 0; i < count; ++i) {
        if (out.size() < lo + 4) break;
        const std::uint64_t off = pick_offset(rng, lo, out.size() - 3);
        out[off] = 0x00;
        out[off + 1] = 0x00;
        out[off + 2] = 0x01;
        // A fake slice most of the time, occasionally a fake picture —
        // both force the scanner to see structure that is not there.
        out[off + 3] = rng.next_below(4) == 0
                           ? 0x00
                           : static_cast<std::uint8_t>(1 + rng.next_below(0xAF));
        note(off, 4);
      }
      break;
    }
    case FaultKind::kClobberStartcode: {
      const auto codes = scan_all_startcodes(out);
      std::vector<std::size_t> eligible;
      for (std::size_t k = 0; k < codes.size(); ++k) {
        if (codes[k].byte_offset >= lo) eligible.push_back(k);
      }
      for (int i = 0; i < count && !eligible.empty(); ++i) {
        const std::size_t pick =
            rng.next_below(static_cast<std::uint32_t>(eligible.size()));
        const std::uint64_t off = codes[eligible[pick]].byte_offset +
                                  rng.next_below(3);
        // Any nonzero, non-one byte destroys the 00 00 01 prefix.
        out[off] = static_cast<std::uint8_t>(2 + rng.next_below(254));
        note(off, 1);
        eligible.erase(eligible.begin() +
                       static_cast<std::ptrdiff_t>(pick));
      }
      break;
    }
  }
  return out;
}

FaultSpec plan_fault(std::uint64_t base_seed, std::uint64_t i) {
  constexpr std::size_t kKinds =
      sizeof(kAllFaultKinds) / sizeof(kAllFaultKinds[0]);
  FaultSpec spec;
  spec.kind = kAllFaultKinds[i % kKinds];
  spec.seed = mix(base_seed + 0x9E3779B97F4A7C15ULL * (i + 1));
  spec.count = 1 + static_cast<int>((i / kKinds) % 4);
  return spec;
}

}  // namespace pmp2::inject
