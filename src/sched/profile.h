// Stream profiling: one calibration decode that records the cost of every
// slice (and therefore picture and GOP) of a stream, in deterministic work
// units and in measured nanoseconds.
//
// This is the bridge between the real decoder and the virtual-time
// multiprocessor simulator: the paper measured its speedup/load-balance/
// synchronization figures on a 16-processor SGI Challenge; this reproduction
// replays the same scheduling policies over real per-task costs on a
// simulated P-processor machine (DESIGN.md §1), so the figures are
// reproducible on any host, including a single-core one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpeg2/decoder.h"
#include "mpeg2/types.h"

namespace pmp2::sched {

struct SliceCost {
  std::uint64_t units = 0;   // deterministic work units (WorkMeter::units)
  std::int64_t ns = 0;       // measured decode time of this slice
};

struct PictureCost {
  mpeg2::PictureType type = mpeg2::PictureType::kI;
  int temporal_reference = 0;
  std::vector<SliceCost> slices;

  [[nodiscard]] std::uint64_t units() const {
    std::uint64_t sum = 0;
    for (const auto& s : slices) sum += s.units;
    return sum;
  }
  [[nodiscard]] std::int64_t ns() const {
    std::int64_t sum = 0;
    for (const auto& s : slices) sum += s.ns;
    return sum;
  }
};

struct GopCost {
  std::vector<PictureCost> pictures;
  std::uint64_t stream_bytes = 0;  // coded bytes of this GOP

  [[nodiscard]] std::uint64_t units() const {
    std::uint64_t sum = 0;
    for (const auto& p : pictures) sum += p.units();
    return sum;
  }
  [[nodiscard]] std::int64_t ns() const {
    std::int64_t sum = 0;
    for (const auto& p : pictures) sum += p.ns();
    return sum;
  }
};

/// Complete cost profile of one stream.
struct StreamProfile {
  bool ok = false;
  std::vector<GopCost> gops;
  std::uint64_t stream_bytes = 0;
  std::int64_t scan_ns = 0;         // measured startcode-scan time
  double ns_per_unit = 0.0;         // calibration: measured ns / work units
  int width = 0, height = 0;
  int slices_per_picture = 0;
  double frame_rate = 30.0;

  [[nodiscard]] int total_pictures() const {
    int n = 0;
    for (const auto& g : gops) n += static_cast<int>(g.pictures.size());
    return n;
  }
  [[nodiscard]] std::int64_t frame_bytes() const {
    const int cw = (width + 15) / 16 * 16;
    const int ch = (height + 15) / 16 * 16;
    return static_cast<std::int64_t>(cw) * ch * 3 / 2;
  }

  /// Task cost in simulated ns: deterministic units scaled by the
  /// calibration constant (default), or the raw measurement.
  [[nodiscard]] std::int64_t slice_cost_ns(const SliceCost& s,
                                           bool measured) const {
    return measured
               ? s.ns
               : static_cast<std::int64_t>(static_cast<double>(s.units) *
                                           ns_per_unit);
  }
};

/// Runs the calibration decode (sequential; one slice timed at a time).
[[nodiscard]] StreamProfile profile_stream(
    std::span<const std::uint8_t> stream);

/// Tiles the profile's GOPs until it covers at least `target_pictures`
/// pictures — the profile-level analogue of how the paper built its
/// 1120-picture streams by repeating a short clip. Cost structure, GOP
/// size, scan rate and calibration are preserved.
[[nodiscard]] StreamProfile replicate_profile(const StreamProfile& profile,
                                              int target_pictures);

}  // namespace pmp2::sched
