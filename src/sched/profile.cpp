#include "sched/profile.h"

#include "bitstream/bit_reader.h"
#include "util/timer.h"

namespace pmp2::sched {

StreamProfile profile_stream(std::span<const std::uint8_t> stream) {
  StreamProfile out;
  out.stream_bytes = stream.size();

  WallTimer scan_timer;
  const mpeg2::StreamStructure structure = mpeg2::scan_structure(stream);
  out.scan_ns = scan_timer.elapsed_ns();
  if (!structure.valid) return out;
  out.width = structure.seq.horizontal_size;
  out.height = structure.seq.vertical_size;
  out.frame_rate = structure.seq.frame_rate();
  out.slices_per_picture = structure.mb_height();

  mpeg2::FramePool pool(out.width, out.height);
  mpeg2::FramePtr fwd_ref, bwd_ref;
  std::uint64_t total_units = 0;
  std::int64_t total_ns = 0;

  for (std::size_t g = 0; g < structure.gops.size(); ++g) {
    const auto& gop = structure.gops[g];
    GopCost gop_cost;
    gop_cost.stream_bytes = gop.end_offset - gop.offset;
    for (const auto& info : gop.pictures) {
      pmp2::BitReader br(stream);
      br.seek_bytes(info.offset);
      mpeg2::PictureContext pic;
      pic.seq = &structure.seq;
      pic.mpeg1 = structure.mpeg1;
      if (!mpeg2::parse_picture_headers(br, pic.header, pic.ext)) return out;
      pic.mb_width = structure.mb_width();
      pic.mb_height = structure.mb_height();

      mpeg2::FramePtr dst = pool.acquire();
      pic.dst = dst.get();
      pic.dst_id = dst->trace_id();
      if (pic.header.type != mpeg2::PictureType::kI) {
        const mpeg2::FramePtr& past =
            pic.header.type == mpeg2::PictureType::kP ? bwd_ref : fwd_ref;
        if (!past) return out;
        pic.fwd_ref = past.get();
        pic.fwd_id = past->trace_id();
        if (pic.header.type == mpeg2::PictureType::kB) {
          pic.bwd_ref = bwd_ref.get();
          pic.bwd_id = bwd_ref->trace_id();
        }
      }

      PictureCost pic_cost;
      pic_cost.type = pic.header.type;
      pic_cost.temporal_reference = pic.header.temporal_reference;
      for (const auto& slice : info.slices) {
        pmp2::BitReader sbr(stream);
        sbr.seek_bytes(slice.offset + 4);
        WallTimer timer;
        const mpeg2::SliceResult r =
            mpeg2::decode_slice(sbr, slice.row, pic);
        if (!r.ok) return out;
        SliceCost cost;
        cost.ns = timer.elapsed_ns();
        cost.units = r.work.units();
        total_units += cost.units;
        total_ns += cost.ns;
        pic_cost.slices.push_back(cost);
      }
      gop_cost.pictures.push_back(std::move(pic_cost));

      if (pic.header.type != mpeg2::PictureType::kB) {
        fwd_ref = bwd_ref;
        bwd_ref = dst;
      }
    }
    out.gops.push_back(std::move(gop_cost));
  }

  out.ns_per_unit =
      total_units > 0 ? static_cast<double>(total_ns) / total_units : 1.0;
  out.ok = true;
  return out;
}

StreamProfile replicate_profile(const StreamProfile& profile,
                                int target_pictures) {
  StreamProfile out = profile;
  if (!profile.ok || profile.gops.empty()) return out;
  std::size_t src = 0;
  while (out.total_pictures() < target_pictures) {
    out.gops.push_back(profile.gops[src]);
    out.stream_bytes += profile.gops[src].stream_bytes;
    src = (src + 1) % profile.gops.size();
  }
  // Scale the measured scan time with the stream growth so the derived
  // scan rate (bytes/ns) stays the same.
  out.scan_ns = static_cast<std::int64_t>(
      static_cast<double>(profile.scan_ns) *
      static_cast<double>(out.stream_bytes) /
      static_cast<double>(profile.stream_bytes ? profile.stream_bytes : 1));
  return out;
}

}  // namespace pmp2::sched
