#include "sched/adaptive.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>
#include <vector>

#include "obs/tracer.h"
#include "sched/sim_internal.h"

namespace pmp2::sched {

using detail::display_times;
using detail::faulted_task_cost;
using detail::fill_latencies;
using detail::kInf;
using detail::picture_arrivals;
using detail::scan_rate;
using detail::scan_ready_ns;
using detail::ScanTrack;

namespace {

/// One GOP task as the adaptive scheduler sees it.
struct AGop {
  const GopCost* cost = nullptr;
  int index = 0;
  int owner = 0;         // deque this GOP arrives on (index % workers)
  int display_base = 0;  // display index of its first picture
  std::int64_t ready = 0;
  std::uint64_t bytes = 0;
};

/// Per-picture state of an exploded GOP (decode order, GOP-local deps).
struct APic {
  const PictureCost* cost = nullptr;
  int gop = 0;
  int pic_in_gop = 0;
  int display_index = 0;
  int deps[2] = {-1, -1};  // improved-policy deps, indices into the same GOP
  bool open = false;
  bool complete = false;
  int next_slice = 0;
  int remaining = 0;
};

/// Runtime of one exploded GOP: strict decode-order opening bounded by
/// max_open_pictures, mirroring the improved slice coordinator but scoped
/// to the GOP (closed GOPs have GOP-private references).
struct Exploded {
  int first_pic = 0;  // global index of the GOP's first picture
  int count = 0;
  int next_to_open = 0;  // relative to first_pic
  int open_count = 0;
  int completed = 0;
  std::int64_t cost_ns = 0;  // accumulated slice cost (EWMA feedback)
};

}  // namespace

SimResult simulate_adaptive(const StreamProfile& profile,
                            const SimConfig& config,
                            const AdaptivePolicy& policy) {
  SimResult result;
  result.workers.resize(static_cast<std::size_t>(config.workers));
  const double rate = scan_rate(profile, config);
  const int max_open = std::max(1, config.max_open_pictures);

  // Build the GOP task list and the (lazily used) per-picture DAG.
  std::vector<AGop> gops;
  std::vector<APic> pics;
  std::vector<int> first_pic_of_gop;
  {
    ScanTrack scan_track(config);
    std::uint64_t scanned = 0;
    int display_base = 0;
    for (std::size_t g = 0; g < profile.gops.size(); ++g) {
      const GopCost& gc = profile.gops[g];
      scanned += gc.stream_bytes;
      scan_track.gop_scanned(static_cast<int>(g),
                             static_cast<std::int64_t>(
                                 static_cast<double>(scanned) / rate));
      AGop t;
      t.cost = &gc;
      t.index = static_cast<int>(g);
      t.owner = static_cast<int>(g) % config.workers;
      t.display_base = display_base;
      t.ready = scan_ready_ns(profile, config, rate, scanned);
      t.bytes = gc.stream_bytes;
      gops.push_back(t);

      first_pic_of_gop.push_back(static_cast<int>(pics.size()));
      int older = -1, newest = -1;  // GOP-local decode-order indices
      for (std::size_t p = 0; p < gc.pictures.size(); ++p) {
        const PictureCost& pc = gc.pictures[p];
        APic pic;
        pic.cost = &pc;
        pic.gop = static_cast<int>(g);
        pic.pic_in_gop = static_cast<int>(p);
        pic.display_index = display_base + pc.temporal_reference;
        switch (pc.type) {
          case mpeg2::PictureType::kI:
            break;
          case mpeg2::PictureType::kP:
            pic.deps[0] = newest;
            break;
          case mpeg2::PictureType::kB:
            pic.deps[0] = older;
            pic.deps[1] = newest;
            break;
        }
        if (pc.type != mpeg2::PictureType::kB) {
          older = newest;
          newest = static_cast<int>(p);
        }
        pics.push_back(pic);
      }
      display_base += static_cast<int>(gc.pictures.size());
    }
    result.pictures = display_base;
  }

  // Scheduler state.
  std::vector<std::deque<int>> deques(
      static_cast<std::size_t>(config.workers));
  std::vector<Exploded> exploded(gops.size());
  std::vector<int> active_exploded;  // sorted GOP indices, still incomplete
  CostEwma ewma;
  std::vector<std::int64_t> whole_cost(gops.size(), 0);  // EWMA feedback
  std::size_t next_arrival = 0;
  int queued = 0;  // GOP tasks sitting in deques
  int remaining_pictures = result.pictures;
  std::vector<std::int64_t> completion_by_display(
      static_cast<std::size_t>(result.pictures), 0);

  struct IdleWorker {
    std::int64_t since;
    int id;
  };
  std::vector<IdleWorker> idle;
  for (int w = 0; w < config.workers; ++w) idle.push_back({0, w});

  struct Event {
    std::int64_t finish;
    int worker;
    int gop;    // GOP index for both kinds
    int pic;    // -1 = whole-GOP completion, else global picture index
    bool operator>(const Event& o) const {
      if (finish != o.finish) return finish > o.finish;
      if (worker != o.worker) return worker > o.worker;
      if (gop != o.gop) return gop > o.gop;
      return pic > o.pic;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  auto admit_arrivals = [&](std::int64_t now) {
    while (next_arrival < gops.size() && gops[next_arrival].ready <= now) {
      deques[static_cast<std::size_t>(gops[next_arrival].owner)].push_back(
          static_cast<int>(next_arrival));
      ++next_arrival;
      ++queued;
    }
  };

  // Opens decode-order-eligible pictures of one exploded GOP.
  auto open_eligible = [&](Exploded& ex) {
    while (ex.next_to_open < ex.count && ex.open_count < max_open) {
      APic& pic = pics[static_cast<std::size_t>(ex.first_pic +
                                                ex.next_to_open)];
      bool deps_ok = true;
      for (const int d : pic.deps) {
        if (d >= 0 &&
            !pics[static_cast<std::size_t>(ex.first_pic + d)].complete) {
          deps_ok = false;
          break;
        }
      }
      if (!deps_ok) break;
      pic.open = true;
      pic.remaining = static_cast<int>(pic.cost->slices.size());
      ++ex.open_count;
      ++ex.next_to_open;
    }
  };

  // First claimable (pic, slice) across exploded GOPs, lowest GOP index
  // first so the frames closest to display drain first.
  auto find_slice = [&]() -> int {
    for (const int g : active_exploded) {
      Exploded& ex = exploded[static_cast<std::size_t>(g)];
      open_eligible(ex);
      for (int i = 0; i < ex.next_to_open; ++i) {
        APic& pic = pics[static_cast<std::size_t>(ex.first_pic + i)];
        if (pic.open && !pic.complete &&
            pic.next_slice < static_cast<int>(pic.cost->slices.size())) {
          return ex.first_pic + i;
        }
      }
    }
    return -1;
  };

  // Runs one GOP whole on worker `w` starting at `now` (simulate_gop's
  // inner loop: per-picture completion times, no per-picture overhead).
  auto run_whole = [&](int w, std::int64_t now, const AGop& task) {
    auto& stats = result.workers[static_cast<std::size_t>(w)];
    const std::int64_t start = now + config.queue_overhead_ns;
    stats.sync_ns += config.queue_overhead_ns;
    std::int64_t t = start;
    for (std::size_t p = 0; p < task.cost->pictures.size(); ++p) {
      const PictureCost& pic = task.cost->pictures[p];
      std::int64_t cost = 0;
      for (std::size_t s = 0; s < pic.slices.size(); ++s) {
        cost += faulted_task_cost(profile, pic.slices[s], config, task.index,
                                  static_cast<int>(p), static_cast<int>(s),
                                  result.concealed_slices);
      }
      const std::int64_t alloc = t;
      t += cost;
      stats.busy_ns += cost;
      whole_cost[static_cast<std::size_t>(task.index)] += cost;
      completion_by_display[static_cast<std::size_t>(
          task.display_base + pic.temporal_reference)] = t;
      if (config.tracer) {
        config.tracer->emit(w, obs::SpanKind::kPicture, alloc, t,
                            task.display_base + pic.temporal_reference, -1,
                            task.index);
      }
    }
    ++stats.tasks;
    if (config.tracer) {
      config.tracer->emit(w, obs::SpanKind::kGopTask, start, t, -1, -1,
                          task.index);
    }
    events.push({t, w, task.index, -1});
  };

  // Tries to hand worker `w` one unit of work at time `now`.
  auto try_assign = [&](const IdleWorker& w, std::int64_t now) -> bool {
    auto& stats = result.workers[static_cast<std::size_t>(w.id)];
    // 1) Backfill an exploded GOP's slice (always shared work).
    // 2) Pop the worker's own deque, deciding granularity at pop time; an
    //    explosion publishes slice tasks and the same worker claims the
    //    first one.
    // 3) Steal a whole GOP task from the next victim in steal_order.
    int p = find_slice();
    if (p < 0 && !deques[static_cast<std::size_t>(w.id)].empty()) {
      const int g = deques[static_cast<std::size_t>(w.id)].front();
      deques[static_cast<std::size_t>(w.id)].pop_front();
      const AGop& task = gops[static_cast<std::size_t>(g)];
      if (!task.cost->pictures.empty() &&
          should_explode(policy, config.workers, queued, ewma, task.bytes)) {
        --queued;
        ++result.exploded_gops;
        Exploded& ex = exploded[static_cast<std::size_t>(g)];
        ex.first_pic = first_pic_of_gop[static_cast<std::size_t>(g)];
        ex.count = static_cast<int>(task.cost->pictures.size());
        active_exploded.insert(
            std::lower_bound(active_exploded.begin(), active_exploded.end(),
                             g),
            g);
        p = find_slice();
        assert(p >= 0);
      } else {
        --queued;
        ++result.gop_mode_gops;
        stats.sync_ns += now - w.since;
        if (config.tracer && now > w.since) {
          config.tracer->emit(w.id, obs::SpanKind::kQueueWait, w.since, now);
        }
        run_whole(w.id, now, task);
        return true;
      }
    }
    if (p < 0 && policy.steal) {
      for (const int v : steal_order(w.id, config.workers)) {
        if (deques[static_cast<std::size_t>(v)].empty()) continue;
        const int g = deques[static_cast<std::size_t>(v)].front();
        deques[static_cast<std::size_t>(v)].pop_front();
        const AGop& task = gops[static_cast<std::size_t>(g)];
        if (!task.cost->pictures.empty() &&
            should_explode(policy, config.workers, queued, ewma,
                           task.bytes)) {
          --queued;
          ++result.exploded_gops;
          Exploded& ex = exploded[static_cast<std::size_t>(g)];
          ex.first_pic = first_pic_of_gop[static_cast<std::size_t>(g)];
          ex.count = static_cast<int>(task.cost->pictures.size());
          active_exploded.insert(
              std::lower_bound(active_exploded.begin(),
                               active_exploded.end(), g),
              g);
          p = find_slice();
          assert(p >= 0);
        } else {
          --queued;
          ++result.gop_mode_gops;
          ++result.stolen_tasks;
          ++stats.stolen_tasks;
          stats.sync_ns += now - w.since;
          if (config.tracer && now > w.since) {
            config.tracer->emit(w.id, obs::SpanKind::kQueueWait, w.since,
                                now);
          }
          run_whole(w.id, now, task);
          return true;
        }
        break;
      }
    }
    if (p < 0) return false;

    APic& pic = pics[static_cast<std::size_t>(p)];
    const int s = pic.next_slice++;
    std::int64_t cost = faulted_task_cost(
        profile, pic.cost->slices[static_cast<std::size_t>(s)], config,
        pic.gop, pic.pic_in_gop, s, result.concealed_slices);
    if (s == 0) cost += config.picture_overhead_ns;
    const std::int64_t start = now + config.queue_overhead_ns;
    stats.sync_ns += now - w.since;
    stats.busy_ns += cost + config.queue_overhead_ns;
    ++stats.tasks;
    exploded[static_cast<std::size_t>(pic.gop)].cost_ns += cost;
    if (gops[static_cast<std::size_t>(pic.gop)].owner != w.id) {
      ++stats.stolen_tasks;
      ++result.stolen_tasks;
    }
    if (config.tracer) {
      if (now > w.since) {
        config.tracer->emit(w.id, obs::SpanKind::kQueueWait, w.since, now);
      }
      config.tracer->emit(w.id, obs::SpanKind::kSliceTask, start,
                          start + cost, p, s);
    }
    events.push({start + cost, w.id, pic.gop, p});
    return true;
  };

  std::int64_t now = 0;
  while (remaining_pictures > 0) {
    admit_arrivals(now);
    // Hand out work until no idle worker can make progress. Earliest-idle
    // first (FIFO fairness, matching the slice coordinator).
    bool assigned = true;
    while (assigned && !idle.empty()) {
      assigned = false;
      std::sort(idle.begin(), idle.end(),
                [](const IdleWorker& a, const IdleWorker& b) {
                  return a.since != b.since ? a.since < b.since
                                            : a.id < b.id;
                });
      for (std::size_t i = 0; i < idle.size(); ++i) {
        if (try_assign(idle[i], now)) {
          idle.erase(idle.begin() + static_cast<std::ptrdiff_t>(i));
          assigned = true;
          break;
        }
      }
    }

    // Advance virtual time to the next completion or arrival.
    const std::int64_t arrival =
        next_arrival < gops.size() ? gops[next_arrival].ready : kInf;
    if (!events.empty() && events.top().finish <= arrival) {
      const Event e = events.top();
      events.pop();
      now = std::max(now, e.finish);
      if (e.pic < 0) {
        // Whole-GOP completion: feed the predictor with the cost the task
        // actually ran at (recorded by run_whole, so faults count once).
        const AGop& task = gops[static_cast<std::size_t>(e.gop)];
        ewma.observe(whole_cost[static_cast<std::size_t>(e.gop)], task.bytes);
        remaining_pictures -= static_cast<int>(task.cost->pictures.size());
      } else {
        APic& pic = pics[static_cast<std::size_t>(e.pic)];
        if (--pic.remaining == 0) {
          pic.complete = true;
          completion_by_display[static_cast<std::size_t>(
              pic.display_index)] = e.finish;
          --remaining_pictures;
          Exploded& ex = exploded[static_cast<std::size_t>(e.gop)];
          --ex.open_count;
          if (++ex.completed == ex.count) {
            active_exploded.erase(
                std::find(active_exploded.begin(), active_exploded.end(),
                          e.gop));
            ewma.observe(ex.cost_ns,
                         gops[static_cast<std::size_t>(e.gop)].bytes);
          }
        }
      }
      idle.push_back({e.finish, e.worker});
    } else if (arrival != kInf) {
      now = std::max(now, arrival);
    } else if (events.empty()) {
      // No events, no arrivals, yet pictures remain: the profile is
      // malformed (should be unreachable).
      assert(remaining_pictures == 0);
      break;
    }
  }

  const auto displays =
      display_times(completion_by_display, config, profile.frame_rate);
  result.makespan_ns = displays.empty() ? 0 : displays.back();
  fill_latencies(displays, picture_arrivals(profile, config, rate), result);
  return result;
}

}  // namespace pmp2::sched
