#include "sched/sim.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <queue>

#include "obs/tracer.h"
#include "sched/sim_internal.h"

namespace pmp2::sched {

using detail::display_times;
using detail::faulted_task_cost;
using detail::fill_latencies;
using detail::kInf;
using detail::picture_arrivals;
using detail::scan_rate;
using detail::scan_ready_ns;
using detail::ScanTrack;

namespace {

/// Turns (time, delta) events into a sampled timeline plus peak.
void build_timeline(std::vector<std::pair<std::int64_t, std::int64_t>> events,
                    SimResult& result) {
  std::sort(events.begin(), events.end());
  std::int64_t bytes = 0;
  result.memory_timeline.clear();
  for (std::size_t i = 0; i < events.size(); ++i) {
    bytes += events[i].second;
    // Collapse simultaneous events into one sample.
    if (i + 1 < events.size() && events[i + 1].first == events[i].first) {
      continue;
    }
    result.memory_timeline.push_back({events[i].first, bytes});
    result.peak_memory = std::max(result.peak_memory, bytes);
  }
}

}  // namespace

std::int64_t SimResult::min_busy_ns() const {
  std::int64_t v = kInf;
  for (const auto& w : workers) v = std::min(v, w.busy_ns);
  return workers.empty() ? 0 : v;
}

std::int64_t SimResult::max_busy_ns() const {
  std::int64_t v = 0;
  for (const auto& w : workers) v = std::max(v, w.busy_ns);
  return v;
}

double SimResult::avg_busy_ns() const {
  if (workers.empty()) return 0.0;
  double sum = 0;
  for (const auto& w : workers) sum += static_cast<double>(w.busy_ns);
  return sum / static_cast<double>(workers.size());
}

double SimResult::sync_ratio() const {
  if (workers.empty()) return 0.0;
  double sum = 0;
  int counted = 0;
  for (const auto& w : workers) {
    const double total = static_cast<double>(w.sync_ns + w.busy_ns);
    if (total > 0) {
      sum += static_cast<double>(w.sync_ns) / total;
      ++counted;
    }
  }
  return counted > 0 ? sum / counted : 0.0;
}

std::int64_t SimResult::latency_percentile(double q) const {
  if (frame_latency_ns.empty()) return 0;
  std::vector<std::int64_t> sorted = frame_latency_ns;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  // Linear interpolation between order statistics (the "linear" definition
  // used by numpy.percentile): rank in [0, n-1].
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<std::int64_t>(
      static_cast<double>(sorted[lo]) +
      frac * static_cast<double>(sorted[hi] - sorted[lo]));
}

parallel::WorkerLoadSummary SimResult::load_summary() const {
  std::vector<std::int64_t> busy, sync, idle;
  std::vector<std::uint64_t> tasks;
  busy.reserve(workers.size());
  sync.reserve(workers.size());
  idle.reserve(workers.size());
  tasks.reserve(workers.size());
  for (const auto& w : workers) {
    busy.push_back(w.busy_ns);
    sync.push_back(w.sync_ns);
    idle.push_back(
        std::max<std::int64_t>(0, makespan_ns - w.busy_ns - w.sync_ns));
    tasks.push_back(static_cast<std::uint64_t>(w.tasks));
  }
  return parallel::summarize_load(busy, sync, idle, tasks);
}

// ---------------------------------------------------------------------------
// GOP-level simulation
// ---------------------------------------------------------------------------
SimResult simulate_gop(const StreamProfile& profile, const SimConfig& config) {
  SimResult result;
  result.workers.resize(static_cast<std::size_t>(config.workers));
  const double rate = scan_rate(profile, config);
  const int n_clusters =
      config.cluster_size > 0
          ? (config.workers + config.cluster_size - 1) / config.cluster_size
          : 1;
  auto cluster_of = [&](int w) {
    return config.cluster_size > 0 ? w / config.cluster_size : 0;
  };

  struct Task {
    int gop;
    std::int64_t ready;
    int display_base;
    int home;
  };
  std::vector<Task> tasks;
  {
    ScanTrack scan_track(config);
    std::uint64_t scanned = 0;
    int display_base = 0;
    for (std::size_t g = 0; g < profile.gops.size(); ++g) {
      scanned += profile.gops[g].stream_bytes;
      scan_track.gop_scanned(static_cast<int>(g),
                             static_cast<std::int64_t>(scanned / rate));
      Task t;
      t.gop = static_cast<int>(g);
      t.ready = scan_ready_ns(profile, config, rate, scanned);
      t.display_base = display_base;
      t.home = static_cast<int>(g) % n_clusters;
      display_base += static_cast<int>(profile.gops[g].pictures.size());
      tasks.push_back(t);
    }
    result.pictures = display_base;
  }

  // Per-cluster FIFO queues (one queue when UMA).
  std::vector<std::deque<int>> queues(
      config.numa_local_queues ? static_cast<std::size_t>(n_clusters) : 1);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::size_t q =
        config.numa_local_queues ? static_cast<std::size_t>(tasks[i].home) : 0;
    queues[q].push_back(static_cast<int>(i));
  }

  std::vector<std::int64_t> free_time(
      static_cast<std::size_t>(config.workers), 0);
  std::vector<std::int64_t> completion_by_display(
      static_cast<std::size_t>(result.pictures), 0);
  // Memory bookkeeping per picture.
  struct PicMem {
    std::int64_t alloc = 0;
    std::int64_t gop_finish = 0;
    bool is_ref = false;
  };
  std::vector<PicMem> pic_mem(static_cast<std::size_t>(result.pictures));

  int remaining = static_cast<int>(tasks.size());
  std::vector<std::pair<std::int64_t, std::int64_t>> mem_events;
  std::vector<std::pair<std::int64_t, std::int64_t>> stream_events;
  std::vector<std::int64_t> start_times;  // per started task, in order
  while (remaining > 0) {
    // The earliest-free worker takes the next task it may run.
    int w = 0;
    for (int i = 1; i < config.workers; ++i) {
      if (free_time[static_cast<std::size_t>(i)] <
          free_time[static_cast<std::size_t>(w)]) {
        w = i;
      }
    }
    const std::int64_t now = free_time[static_cast<std::size_t>(w)];
    // Pick a task: own-cluster queue first, then steal the task that is
    // ready soonest.
    int chosen_q = -1;
    if (config.numa_local_queues) {
      const int own = cluster_of(w);
      if (!queues[static_cast<std::size_t>(own)].empty()) {
        chosen_q = own;
      } else {
        std::int64_t best_ready = kInf;
        for (std::size_t q = 0; q < queues.size(); ++q) {
          if (queues[q].empty()) continue;
          const std::int64_t r = tasks[static_cast<std::size_t>(
                                           queues[q].front())].ready;
          if (r < best_ready) {
            best_ready = r;
            chosen_q = static_cast<int>(q);
          }
        }
      }
    } else {
      chosen_q = 0;
    }
    assert(chosen_q >= 0);
    const Task task =
        tasks[static_cast<std::size_t>(queues[static_cast<std::size_t>(
                                                  chosen_q)].front())];
    queues[static_cast<std::size_t>(chosen_q)].pop_front();
    --remaining;

    // Bounded queue: the scan may only have pushed this task once fewer
    // than max_queued_gops tasks sat unstarted, i.e. after task
    // (i - bound) started.
    std::int64_t ready = task.ready;
    if (config.max_queued_gops > 0) {
      const int idx = static_cast<int>(start_times.size());
      const int gate = idx - config.max_queued_gops;
      if (gate >= 0) {
        ready = std::max(ready,
                         start_times[static_cast<std::size_t>(gate)]);
      }
    }
    const std::int64_t start =
        std::max(now, ready) + config.queue_overhead_ns;
    start_times.push_back(start);
    const bool remote =
        config.cluster_size > 0 && cluster_of(w) != task.home;
    const double penalty = remote ? config.remote_penalty : 1.0;

    auto& stats = result.workers[static_cast<std::size_t>(w)];
    stats.sync_ns += start - now;
    if (remote) ++stats.remote_tasks;
    if (config.tracer && start > now) {
      // A GOP worker only stalls for the scan process / empty task queue.
      config.tracer->emit(w, obs::SpanKind::kQueueWait, now, start);
    }

    const GopCost& gop = profile.gops[static_cast<std::size_t>(task.gop)];
    std::int64_t t = start;
    for (std::size_t p = 0; p < gop.pictures.size(); ++p) {
      const PictureCost& pic = gop.pictures[p];
      std::int64_t cost = 0;
      for (std::size_t s = 0; s < pic.slices.size(); ++s) {
        cost += faulted_task_cost(profile, pic.slices[s], config, task.gop,
                                  static_cast<int>(p), static_cast<int>(s),
                                  result.concealed_slices);
      }
      cost = static_cast<std::int64_t>(static_cast<double>(cost) * penalty);
      const std::int64_t alloc = t;
      t += cost;
      stats.busy_ns += cost;
      const int display_index = task.display_base + pic.temporal_reference;
      completion_by_display[static_cast<std::size_t>(display_index)] = t;
      auto& pm = pic_mem[static_cast<std::size_t>(display_index)];
      pm.alloc = alloc;
      pm.is_ref = pic.type != mpeg2::PictureType::kB;
      if (config.tracer) {
        config.tracer->emit(w, obs::SpanKind::kPicture, alloc, t,
                            display_index, -1, task.gop);
      }
    }
    ++stats.tasks;
    if (config.tracer) {
      config.tracer->emit(w, obs::SpanKind::kGopTask, start, t, -1, -1,
                          task.gop);
    }
    free_time[static_cast<std::size_t>(w)] = t;
    for (std::size_t p = 0; p < gop.pictures.size(); ++p) {
      pic_mem[static_cast<std::size_t>(
                  task.display_base +
                  gop.pictures[p].temporal_reference)].gop_finish = t;
    }
    // Stream buffer: the GOP's bytes live from scan-push until decode
    // finish.
    mem_events.emplace_back(ready,
                            static_cast<std::int64_t>(gop.stream_bytes));
    mem_events.emplace_back(t, -static_cast<std::int64_t>(gop.stream_bytes));
    stream_events.emplace_back(ready,
                               static_cast<std::int64_t>(gop.stream_bytes));
    stream_events.emplace_back(t,
                               -static_cast<std::int64_t>(gop.stream_bytes));
  }

  const auto displays =
      display_times(completion_by_display, config, profile.frame_rate);
  result.makespan_ns = displays.empty() ? 0 : displays.back();
  fill_latencies(displays, picture_arrivals(profile, config, rate), result);

  // A worker owns its GOP's frame buffers for the whole task (the paper's
  // decoder allocates per-GOP; Fig. 8 shows memory linear in workers x GOP
  // size): each picture's buffer lives from its decode to
  // max(display, GOP decode end).
  const std::int64_t fb = profile.frame_bytes();
  for (std::size_t i = 0; i < pic_mem.size(); ++i) {
    const auto& pm = pic_mem[i];
    const std::int64_t freed = std::max(displays[i], pm.gop_finish);
    mem_events.emplace_back(pm.alloc, fb);
    mem_events.emplace_back(freed, -fb);
  }
  build_timeline(std::move(mem_events), result);
  // Scan-ahead buffer peak (the scan(t) term of the paper's Fig. 9).
  {
    std::sort(stream_events.begin(), stream_events.end());
    std::int64_t bytes = 0;
    for (const auto& [t, delta] : stream_events) {
      bytes += delta;
      result.peak_stream_bytes = std::max(result.peak_stream_bytes, bytes);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Slice-level simulation
// ---------------------------------------------------------------------------
SimResult simulate_slice(const StreamProfile& profile, const SimConfig& config,
                         parallel::SlicePolicy policy) {
  SimResult result;
  result.workers.resize(static_cast<std::size_t>(config.workers));
  const double rate = scan_rate(profile, config);

  struct SPic {
    const PictureCost* cost = nullptr;
    int display_index = 0;
    int gop = 0;         // fault-model hash coordinates
    int pic_in_gop = 0;
    int deps[2] = {-1, -1};  // scheduling dependencies (policy-specific)
    int refs[2] = {-1, -1};  // actual reference pictures (for memory)
    std::int64_t scan_ready = 0;
    // Runtime:
    bool open = false;
    bool complete = false;
    int next_slice = 0;
    int remaining = 0;
    std::int64_t open_time = 0;
    std::int64_t completion = 0;
    std::int64_t last_ref_use = 0;
  };
  std::vector<SPic> pics;
  {
    ScanTrack scan_track(config);
    int display_base = 0;
    int older = -1, newest = -1;
    std::uint64_t gop_scanned = 0;
    int gop_index = 0;
    for (const auto& gop : profile.gops) {
      // Admission is per-GOP, matching the real slice decoder: the scan
      // appends a GOP's pictures only once next_gop() has walked the whole
      // GOP, so every picture of GOP g becomes available at g's scan-end
      // time. (The latency objective's *arrival* stays per-picture — see
      // picture_arrivals — so latencies include this admission delay.)
      gop_scanned += gop.stream_bytes;
      scan_track.gop_scanned(gop_index,
                             static_cast<std::int64_t>(gop_scanned / rate));
      ++gop_index;
      for (std::size_t p = 0; p < gop.pictures.size(); ++p) {
        const auto& pc = gop.pictures[p];
        SPic pic;
        pic.cost = &pc;
        pic.gop = gop_index - 1;  // gop_index already advanced
        pic.pic_in_gop = static_cast<int>(p);
        pic.display_index = display_base + pc.temporal_reference;
        const int index = static_cast<int>(pics.size());
        pic.scan_ready = scan_ready_ns(profile, config, rate, gop_scanned);
        switch (pc.type) {
          case mpeg2::PictureType::kI:
            break;
          case mpeg2::PictureType::kP:
            pic.refs[0] = newest;
            break;
          case mpeg2::PictureType::kB:
            pic.refs[0] = older;
            pic.refs[1] = newest;
            break;
        }
        if (policy == parallel::SlicePolicy::kSimple) {
          pic.deps[0] = index - 1;
        } else {
          pic.deps[0] = pic.refs[0];
          pic.deps[1] = pic.refs[1];
        }
        if (pc.type != mpeg2::PictureType::kB) {
          older = newest;
          newest = index;
        }
        pics.push_back(pic);
      }
      display_base += static_cast<int>(gop.pictures.size());
    }
    result.pictures = display_base;
  }
  const int n = static_cast<int>(pics.size());
  const int max_open = policy == parallel::SlicePolicy::kSimple
                           ? 1
                           : std::max(1, config.max_open_pictures);

  // Event-driven simulation.
  struct Event {
    std::int64_t finish;
    int worker;
    int pic;
    bool operator>(const Event& o) const { return finish > o.finish; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  struct IdleWorker {
    std::int64_t since;
    int id;
  };
  std::vector<IdleWorker> idle;
  for (int w = 0; w < config.workers; ++w) idle.push_back({0, w});

  const int n_clusters =
      config.cluster_size > 0
          ? (config.workers + config.cluster_size - 1) / config.cluster_size
          : 1;
  auto cluster_of = [&](int w) {
    return config.cluster_size > 0 ? w / config.cluster_size : 0;
  };
  auto pic_home = [&](int p) { return p % n_clusters; };

  std::int64_t now = 0;
  int next_to_open = 0;
  int open_count = 0;
  int completed = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> mem_events;
  const std::int64_t fb = profile.frame_bytes();

  auto deps_complete = [&](const SPic& pic) {
    for (const int d : pic.deps) {
      if (d >= 0 && !pics[static_cast<std::size_t>(d)].complete) return false;
    }
    return true;
  };

  // Opens pictures eligible at time `t`; returns the earliest future scan
  // time blocking an otherwise-eligible open (kInf if none).
  auto open_eligible = [&](std::int64_t t) {
    std::int64_t blocked_until = kInf;
    while (next_to_open < n && open_count < max_open) {
      SPic& pic = pics[static_cast<std::size_t>(next_to_open)];
      if (!deps_complete(pic)) break;
      if (pic.scan_ready > t) {
        blocked_until = pic.scan_ready;
        break;
      }
      pic.open = true;
      pic.open_time = t;
      pic.remaining = static_cast<int>(pic.cost->slices.size());
      mem_events.emplace_back(t, fb);
      ++open_count;
      ++next_to_open;
    }
    return blocked_until;
  };

  int first_active = 0;
  auto find_slice = [&]() -> int {
    for (int i = first_active; i < next_to_open; ++i) {
      SPic& pic = pics[static_cast<std::size_t>(i)];
      if (pic.complete && i == first_active) {
        ++first_active;
        continue;
      }
      if (pic.open && !pic.complete &&
          pic.next_slice < static_cast<int>(pic.cost->slices.size())) {
        return i;
      }
    }
    return -1;
  };

  // Classified cause of the most recent stall, used to label idle-worker
  // wait spans (deterministic: derived purely from scheduler state).
  obs::SpanKind stall_kind = obs::SpanKind::kBarrierWait;
  while (completed < n) {
    const std::int64_t scan_block = open_eligible(now);
    bool assigned = false;
    while (!idle.empty()) {
      const int p = find_slice();
      if (p < 0) break;
      // Earliest-idle worker takes the slice (FIFO fairness).
      std::size_t best = 0;
      for (std::size_t i = 1; i < idle.size(); ++i) {
        if (idle[i].since < idle[best].since) best = i;
      }
      const IdleWorker w = idle[best];
      idle.erase(idle.begin() + static_cast<std::ptrdiff_t>(best));
      SPic& pic = pics[static_cast<std::size_t>(p)];
      const int s = pic.next_slice++;
      std::int64_t cost = faulted_task_cost(
          profile, pic.cost->slices[static_cast<std::size_t>(s)], config,
          pic.gop, pic.pic_in_gop, s, result.concealed_slices);
      if (s == 0) cost += config.picture_overhead_ns;
      const bool remote =
          config.cluster_size > 0 && cluster_of(w.id) != pic_home(p);
      if (remote) {
        cost = static_cast<std::int64_t>(static_cast<double>(cost) *
                                         config.remote_penalty);
      }
      const std::int64_t start = now + config.queue_overhead_ns;
      auto& stats = result.workers[static_cast<std::size_t>(w.id)];
      stats.sync_ns += now - w.since;
      stats.busy_ns += cost + config.queue_overhead_ns;
      ++stats.tasks;
      if (remote) ++stats.remote_tasks;
      if (config.tracer) {
        if (now > w.since) {
          config.tracer->emit(w.id, stall_kind, w.since, now);
        }
        config.tracer->emit(w.id, obs::SpanKind::kSliceTask, start,
                            start + cost, p, s);
      }
      events.push({start + cost, w.id, p});
      assigned = true;
    }
    if (assigned) continue;
    if (!idle.empty()) {
      // Workers are stalling right now; classify why, mirroring the real
      // Coordinator: scan not far enough ahead -> queue-empty; open-picture
      // bound reached -> backpressure; otherwise a picture dependency.
      stall_kind = scan_block != kInf ? obs::SpanKind::kQueueWait
                   : (next_to_open < n && open_count >= max_open)
                       ? obs::SpanKind::kBackpressure
                       : obs::SpanKind::kBarrierWait;
    }

    // Nothing to assign: advance time to the next completion or scan point.
    if (!events.empty() &&
        (scan_block == kInf || events.top().finish <= scan_block)) {
      const Event e = events.top();
      events.pop();
      now = std::max(now, e.finish);
      SPic& pic = pics[static_cast<std::size_t>(e.pic)];
      if (--pic.remaining == 0) {
        pic.complete = true;
        pic.completion = e.finish;
        ++completed;
        --open_count;
        for (const int r : pic.refs) {
          if (r >= 0) {
            pics[static_cast<std::size_t>(r)].last_ref_use = std::max(
                pics[static_cast<std::size_t>(r)].last_ref_use, e.finish);
          }
        }
      }
      idle.push_back({e.finish, e.worker});
    } else if (scan_block != kInf) {
      now = scan_block;
    } else {
      // No events, no scan progress possible, yet work remains: the
      // dependency graph is stuck (malformed stream profile).
      assert(events.empty());
      break;
    }
  }

  std::vector<std::int64_t> completion_by_display(
      static_cast<std::size_t>(result.pictures), 0);
  for (const auto& pic : pics) {
    completion_by_display[static_cast<std::size_t>(pic.display_index)] =
        pic.completion;
  }
  const auto displays =
      display_times(completion_by_display, config, profile.frame_rate);
  result.makespan_ns = displays.empty() ? 0 : displays.back();
  fill_latencies(displays, picture_arrivals(profile, config, rate), result);

  for (int i = 0; i < n; ++i) {
    const SPic& pic = pics[static_cast<std::size_t>(i)];
    const std::int64_t display =
        displays[static_cast<std::size_t>(pic.display_index)];
    const std::int64_t freed = std::max(display, pic.last_ref_use);
    mem_events.emplace_back(freed, -fb);
  }
  build_timeline(std::move(mem_events), result);
  return result;
}

}  // namespace pmp2::sched
