#include "sched/fairness.h"

#include <algorithm>
#include <queue>

namespace pmp2::sched {

FairSimResult simulate_fair_service(std::span<const double> weights,
                                    std::span<const std::int64_t> task_cost_ns,
                                    int workers, int total_tasks) {
  FairSimResult out;
  const std::size_t n = weights.size();
  out.served_ns.assign(n, 0);
  out.tasks.assign(n, 0);
  if (n == 0 || workers <= 0 || total_tasks <= 0) return out;

  std::vector<FairShare> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    shares[i].weight = weights[i];
    shares[i].runnable = true;
  }

  // Event-driven virtual time: each worker is a (finish_time, worker) pair;
  // the earliest-finishing worker claims next. served_ns is charged at
  // claim time — the same accounting order the real server uses (service
  // is debited when the task is handed out, so concurrent claims between
  // two completions still spread across sessions).
  using Event = std::pair<std::int64_t, int>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> free_at;
  for (int w = 0; w < workers; ++w) free_at.emplace(0, w);

  for (int t = 0; t < total_tasks; ++t) {
    const auto [now, w] = free_at.top();
    free_at.pop();
    const int s = pick_session(shares);
    if (s < 0) break;  // unreachable: all sessions stay runnable
    const std::int64_t cost =
        task_cost_ns[static_cast<std::size_t>(s) % task_cost_ns.size()];
    shares[static_cast<std::size_t>(s)].served_ns += cost;
    out.served_ns[static_cast<std::size_t>(s)] += cost;
    ++out.tasks[static_cast<std::size_t>(s)];
    free_at.emplace(now + cost, w);
  }
  return out;
}

}  // namespace pmp2::sched
