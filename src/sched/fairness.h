// Cross-session fair scheduling policy for the multi-stream DecodeServer
// (src/serve, docs/SERVING.md).
//
// The server multiplexes N decode sessions over one shared worker pool.
// When a worker frees up, *which session's* work it claims decides whether
// a heavy 704x480 session can starve a 176x120 one. The policy here is
// weighted min-service ("start-time fair queueing" without the virtual
// clock): every session accumulates the CPU time the pool has spent on it,
// and a free worker always serves the runnable session with the least
// normalized service (served_ns / weight). Over any interval in which a
// set of sessions stays runnable, their service converges to the ratio of
// their weights — the max-min fairness property the simulate_fair_service
// harness (and tests/serve_test.cpp) validates in virtual time before the
// real server relies on it.
//
// Header-only pure arithmetic, like sched::should_explode: the real server
// and the validation sim share this exact code, so the sim's fairness
// bounds are statements about the shipped scheduler.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pmp2::sched {

/// One session as the fairness policy sees it.
struct FairShare {
  double weight = 1.0;              // relative share (admission may scale it)
  std::int64_t served_ns = 0;       // pool CPU time spent on this session
  bool runnable = false;            // has claimable work right now
};

/// Normalized service: the quantity the policy equalizes. A non-positive
/// weight is clamped to a minimal share so a misconfigured session starves
/// rather than divides by zero.
[[nodiscard]] inline double normalized_service(const FairShare& s) {
  const double w = s.weight > 0 ? s.weight : 1e-9;
  return static_cast<double>(s.served_ns) / w;
}

/// Virtual start for a session arriving while others already run (the
/// start-time half of start-time fair queueing): the arrival's served_ns
/// ledger is seeded to `weight` times the minimum normalized service over
/// the currently running sessions, so it competes from "now" rather than
/// from zero history. Without this, a session arriving into a long-lived
/// server holds the minimum normalized service until its lifetime total
/// catches up with neighbors that have run for minutes — every free
/// worker serves the newcomer and the veterans starve. Returns 0 when
/// nothing runs (an empty server has no "now" to catch up to).
[[nodiscard]] inline std::int64_t virtual_start(
    double weight, std::span<const FairShare> running) {
  bool any = false;
  double min_norm = 0.0;
  for (const FairShare& s : running) {
    const double n = normalized_service(s);
    if (!any || n < min_norm) {
      min_norm = n;
      any = true;
    }
  }
  if (!any || min_norm <= 0.0) return 0;
  const double w = weight > 0 ? weight : 1e-9;
  return static_cast<std::int64_t>(min_norm * w);
}

/// Index of the runnable session with the least normalized service; ties
/// break toward the lowest index (deterministic). -1 when nothing is
/// runnable.
[[nodiscard]] inline int pick_session(std::span<const FairShare> sessions) {
  int best = -1;
  double best_service = 0.0;
  for (int i = 0; i < static_cast<int>(sessions.size()); ++i) {
    const FairShare& s = sessions[static_cast<std::size_t>(i)];
    if (!s.runnable) continue;
    const double service = normalized_service(s);
    if (best < 0 || service < best_service) {
      best = i;
      best_service = service;
    }
  }
  return best;
}

/// Virtual-time validation harness for pick_session (no threads, no
/// clock): `workers` identical workers repeatedly claim fixed-cost tasks
/// from always-runnable sessions until `total_tasks` tasks ran. Returns
/// per-session served_ns. With every session runnable throughout, the
/// result must match the weight ratios to within one task's cost — the
/// bound tests/serve_test.cpp asserts.
struct FairSimResult {
  std::vector<std::int64_t> served_ns;
  std::vector<std::int64_t> tasks;
};

[[nodiscard]] FairSimResult simulate_fair_service(
    std::span<const double> weights, std::span<const std::int64_t> task_cost_ns,
    int workers, int total_tasks);

}  // namespace pmp2::sched
