// Adaptive-granularity scheduling policy and its virtual-time simulator.
//
// The paper fixes parallel granularity per experiment: GOP tasks for
// throughput (Fig. 5), slice tasks for latency (Fig. 11). The adaptive
// policy chooses per GOP at dispatch time — run the GOP whole when the
// pipeline is deep (plenty of ready GOPs to keep every worker busy), or
// explode it into slice tasks when the queue is shallow or the GOP is
// predicted to be a straggler, so all workers cooperate on the frames that
// gate display. simulate_adaptive sweeps this policy space in virtual time
// (deterministic, any worker count) before the real decoder commits to it;
// the frame-latency objective (SimResult::frame_latency_ns) provides the
// second Pareto axis next to makespan.
//
// Work stealing: each worker owns a deque of GOP tasks (owner = gop index
// mod workers, preserving the GOP decoder's round-robin affinity); an idle
// worker first backfills slice tasks of any exploded GOP, then pops its own
// deque, then steals a whole GOP from the next worker in steal_order().
// Stolen-task counts per worker answer "where did stolen work land".
#pragma once

#include <vector>

#include "sched/sim.h"

namespace pmp2::sched {

/// Victim order for worker `self` of `workers`: self+1, self+2, ... wrapped,
/// excluding self. Deterministic and purely index-based so steal decisions
/// are reproducible and unit-testable. Header-only (like CostEwma and
/// should_explode below) so the real decoder in src/parallel can share the
/// exact policy arithmetic without a link dependency on pmp2_sched.
[[nodiscard]] inline std::vector<int> steal_order(int self, int workers) {
  std::vector<int> out;
  if (workers <= 1) return out;
  out.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 1; i < workers; ++i) {
    out.push_back((self + i) % workers);
  }
  return out;
}

/// Dispatch policy knobs for the hybrid decoder and its simulator.
struct AdaptivePolicy {
  /// Explode a GOP when fewer than this many GOP tasks are queued across
  /// all deques (the pipeline is shallow, so latency wins over locality).
  /// 0 = use the worker count, the natural "can everyone stay busy" depth.
  int depth_threshold = 0;

  /// Explode a GOP whose predicted cost exceeds this multiple of the
  /// average completed-GOP cost (a straggler that would gate the display
  /// tail if run whole). The predictor is an online EWMA of ns per coded
  /// byte times the GOP's bytes — the runtime analogue of the calibrated
  /// units x ns_per_unit cost model.
  double cost_factor = 2.0;

  /// Allow idle workers to steal whole GOPs from other deques. Slice tasks
  /// of exploded GOPs are always shared (that is the point of exploding).
  bool steal = true;

  [[nodiscard]] int effective_depth(int workers) const {
    return depth_threshold > 0 ? depth_threshold : workers;
  }
};

/// Online cost predictor: EWMA of observed ns per coded byte. Starts
/// unknown (predict() returns -1 until the first observation), which the
/// policy treats as "explode" — the latency-safe default before any
/// calibration exists. Pure arithmetic, shared verbatim by the simulator
/// and the real decoder so the sweeps predict the shipped behavior.
class CostEwma {
 public:
  explicit CostEwma(double alpha = 0.3) : alpha_(alpha) {}

  void observe(std::int64_t cost_ns, std::uint64_t bytes) {
    if (bytes == 0 || cost_ns <= 0) return;
    const double r = static_cast<double>(cost_ns) / static_cast<double>(bytes);
    ns_per_byte_ = ns_per_byte_ < 0 ? r
                                    : (1.0 - alpha_) * ns_per_byte_ +
                                          alpha_ * r;
    total_ns_ += cost_ns;
    ++observations_;
  }

  /// Predicted cost of a task of `bytes` coded bytes; -1 while uncalibrated.
  [[nodiscard]] std::int64_t predict(std::uint64_t bytes) const {
    if (ns_per_byte_ < 0) return -1;
    return static_cast<std::int64_t>(ns_per_byte_ *
                                     static_cast<double>(bytes));
  }

  /// Mean observed task cost; -1 while uncalibrated.
  [[nodiscard]] std::int64_t average_ns() const {
    return observations_ > 0 ? total_ns_ / observations_ : -1;
  }

  [[nodiscard]] int observations() const { return observations_; }

 private:
  double alpha_;
  double ns_per_byte_ = -1.0;
  std::int64_t total_ns_ = 0;
  int observations_ = 0;
};

/// The dispatch decision, factored out of both the simulator and the real
/// decoder: explode iff the ready queue is shallow, the GOP is a predicted
/// straggler, or no calibration exists yet.
[[nodiscard]] inline bool should_explode(const AdaptivePolicy& policy,
                                         int workers, int queued_gops,
                                         const CostEwma& ewma,
                                         std::uint64_t gop_bytes) {
  if (queued_gops < policy.effective_depth(workers)) return true;
  const std::int64_t predicted = ewma.predict(gop_bytes);
  const std::int64_t avg = ewma.average_ns();
  if (predicted < 0 || avg < 0) return true;  // uncalibrated: latency-safe
  return static_cast<double>(predicted) >
         policy.cost_factor * static_cast<double>(avg);
}

/// Simulates the adaptive hybrid decoder: GOP tasks arrive from the scan
/// into per-worker deques; each pop dispatches whole or exploded per
/// `policy`; idle workers backfill exploded slices and steal queued GOPs.
/// Fills SimResult's adaptive accounting (gop_mode_gops, exploded_gops,
/// stolen_tasks) and the frame-latency objective.
[[nodiscard]] SimResult simulate_adaptive(const StreamProfile& profile,
                                          const SimConfig& config,
                                          const AdaptivePolicy& policy);

}  // namespace pmp2::sched
