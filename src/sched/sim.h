// Virtual-time multiprocessor simulator.
//
// Replays the two parallel-decoder scheduling policies (GOP-level and
// slice-level, simple/improved) over a StreamProfile on a simulated
// P-processor shared-memory machine: a scan process feeding a task queue,
// P worker processes, and a display process, exactly the paper's Fig. 4
// pipeline. Produces the quantities of the paper's evaluation — speedup,
// per-worker compute/sync time, load balance, memory-over-time — for any
// processor count, deterministically.
//
// An optional NUMA extension models the paper's §7.2 DASH experiments:
// clustered processors, a cost penalty for operating on remote data, and
// optional per-cluster task queues with stealing.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/slice_parallel.h"
#include "sched/profile.h"

namespace pmp2::obs {
class Tracer;
}

namespace pmp2::sched {

struct SimConfig {
  int workers = 4;
  /// false (default): deterministic work-unit costs scaled by the profile's
  /// calibration constant; true: raw measured per-slice nanoseconds.
  bool measured_costs = false;
  /// Multiplies every task cost: > 1 slows the virtual processors down.
  /// The memory experiments (Figs. 8/9) set this so one virtual worker
  /// decodes at the paper's per-processor rate (~5 pics/s at 704x480 on a
  /// 150 MHz R4400); otherwise a modern core outruns the 30 pics/s display
  /// so completely that the display backlog hides the workers x GOP-size
  /// effect the paper measured.
  double cost_scale = 1.0;
  /// Cost of one task-queue access (lock + dequeue). The paper measured
  /// this to be negligible; it is modelled anyway.
  std::int64_t queue_overhead_ns = 1'000;
  /// Per-picture overhead in the slice decoders (re-reading picture
  /// headers, §5.2.1), charged to the worker that opens the picture.
  std::int64_t picture_overhead_ns = 20'000;
  /// Model the scan process: a task only becomes available once its bytes
  /// have been scanned. When false all tasks are ready at t = 0.
  bool model_scan = true;
  /// Pre-streaming front-end: the entire stream is scanned before any task
  /// becomes ready (the Amdahl-style upfront input stage). Default false =
  /// streaming demux, where a task is ready as soon as its own bytes have
  /// been scanned. Only meaningful when model_scan is set.
  bool upfront_scan = false;
  /// GOP simulation only: bound on GOP tasks sitting in the queue
  /// unstarted (the scan process blocks when full). 0 = unbounded, the
  /// paper's configuration.
  int max_queued_gops = 0;
  /// Scan throughput; 0 derives it from the profile's measured scan time.
  double scan_bytes_per_ns = 0.0;
  /// Pace the display process at the stream frame rate (used by the memory
  /// timeline experiments; throughput experiments leave it off).
  bool paced_display = false;
  /// Maximum pictures concurrently open in the improved slice policy.
  int max_open_pictures = 3;

  // --- Concealment cost model (fault-injection what-if analysis) ---
  /// Fraction of slices marked corrupt by a deterministic per-slice hash
  /// keyed on (fault_seed, gop, picture, slice). A corrupt slice's decode
  /// cost is replaced by conceal_cost_ns — concealment is a row copy, far
  /// cheaper than entropy decode — so the model answers how degradation
  /// shifts the speedup/load-balance picture (docs/ROBUSTNESS.md). 0 = off.
  double fault_slice_rate = 0.0;
  /// Virtual cost of concealing one corrupt slice (scaled by cost_scale
  /// like every other task cost).
  std::int64_t conceal_cost_ns = 2'000;
  /// Seed for the corrupt-slice selection hash.
  std::uint64_t fault_seed = 1;

  // --- NUMA extension (§7.2) ---
  int cluster_size = 0;         // 0 = centralized memory (UMA)
  double remote_penalty = 1.0;  // cost multiplier for remote-homed tasks
  bool numa_local_queues = false;  // per-cluster queues + stealing

  /// Optional span tracer (needs `workers` tracks; with `workers + 1`
  /// tracks the extra track records the scan process as per-GOP kScan
  /// spans, mirroring the live decoders). The simulator records every task
  /// and wait with its *virtual* timestamps, so two runs with identical
  /// config export byte-identical Chrome JSON.
  obs::Tracer* tracer = nullptr;
};

struct SimWorkerStats {
  std::int64_t busy_ns = 0;  // simulated compute
  std::int64_t sync_ns = 0;  // simulated waiting (queue empty, barrier)
  int tasks = 0;
  int remote_tasks = 0;  // NUMA: tasks executed away from their home
  int stolen_tasks = 0;  // adaptive: tasks run for another worker's deque
};

struct MemSample {
  std::int64_t t_ns = 0;
  std::int64_t bytes = 0;
};

struct SimResult {
  std::int64_t makespan_ns = 0;  // until the last picture is displayed
  int pictures = 0;
  int concealed_slices = 0;  // slices the fault model marked corrupt
  std::vector<SimWorkerStats> workers;
  std::vector<MemSample> memory_timeline;  // stream buffer + frame bytes
  std::int64_t peak_memory = 0;
  std::int64_t peak_stream_bytes = 0;  // scan-ahead buffer alone (scan(t))

  /// Frame-latency objective (the second axis of the bi-criteria Pareto
  /// sweeps next to makespan): per picture, display time minus arrival,
  /// where arrival is the virtual time the picture's bytes finished
  /// scanning. Indexed by display order. Meaningful for paced sweeps
  /// (scan_bytes_per_ns set to the stream's real-time byte rate); in
  /// unpaced runs the scan outruns decode and latency degenerates to
  /// queueing + decode time.
  std::vector<std::int64_t> frame_latency_ns;

  // Adaptive-granularity accounting (simulate_adaptive only).
  int gop_mode_gops = 0;   // GOPs run whole (throughput mode)
  int exploded_gops = 0;   // GOPs exploded into slice tasks (latency mode)
  int stolen_tasks = 0;    // sum over workers of stolen_tasks

  [[nodiscard]] double pictures_per_second() const {
    return makespan_ns > 0 ? pictures * 1e9 / static_cast<double>(makespan_ns)
                           : 0.0;
  }
  /// Percentile (q in [0, 100]) over frame_latency_ns with linear
  /// interpolation between order statistics; 0 when no latencies recorded.
  [[nodiscard]] std::int64_t latency_percentile(double q) const;
  [[nodiscard]] std::int64_t min_busy_ns() const;
  [[nodiscard]] std::int64_t max_busy_ns() const;
  [[nodiscard]] double avg_busy_ns() const;
  /// Average over workers of sync / (sync + busy), the paper's Fig. 12.
  [[nodiscard]] double sync_ratio() const;
  /// Shared load-balance/sync summary (same derivation as the real
  /// decoders, parallel::summarize_load); idle = makespan - busy - sync.
  [[nodiscard]] parallel::WorkerLoadSummary load_summary() const;
};

/// Simulates the GOP-level decoder (one task per closed GOP).
[[nodiscard]] SimResult simulate_gop(const StreamProfile& profile,
                                     const SimConfig& config);

/// Simulates the slice-level decoder under the given policy.
[[nodiscard]] SimResult simulate_slice(const StreamProfile& profile,
                                       const SimConfig& config,
                                       parallel::SlicePolicy policy);

}  // namespace pmp2::sched
