// Shared internals of the virtual-time simulators (sim.cpp, adaptive.cpp):
// cost/fault models, scan pacing, display-order emission and the
// frame-latency objective. One definition each so the three simulated
// policies (GOP, slice, adaptive) price work and time identically — the
// Pareto comparisons in bench_adaptive are only meaningful if the policies
// differ in scheduling alone.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/tracer.h"
#include "sched/profile.h"
#include "sched/sim.h"

namespace pmp2::sched::detail {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

/// Builds the display-order emission times from per-picture completion
/// times: picture i displays when complete and all earlier pictures have
/// displayed (optionally paced at the frame rate).
inline std::vector<std::int64_t> display_times(
    const std::vector<std::int64_t>& completion_by_display,
    const SimConfig& config, double frame_rate) {
  std::vector<std::int64_t> out(completion_by_display.size());
  const auto period = static_cast<std::int64_t>(1e9 / frame_rate);
  std::int64_t prev = -period;
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::int64_t t = std::max(completion_by_display[i], prev);
    if (config.paced_display) t = std::max(t, prev + period);
    out[i] = t;
    prev = t;
  }
  return out;
}

inline double scan_rate(const StreamProfile& profile,
                        const SimConfig& config) {
  if (config.scan_bytes_per_ns > 0) return config.scan_bytes_per_ns;
  if (profile.scan_ns <= 0) return 1e9;  // effectively instant
  // The scan processor slows down with the workers (cost_scale).
  return static_cast<double>(profile.stream_bytes) /
         (static_cast<double>(profile.scan_ns) * config.cost_scale);
}

inline std::int64_t task_cost(const StreamProfile& profile,
                              const SliceCost& s, const SimConfig& config) {
  return static_cast<std::int64_t>(
      static_cast<double>(profile.slice_cost_ns(s, config.measured_costs)) *
      config.cost_scale);
}

/// Deterministic corrupt-slice selection for the concealment cost model:
/// SplitMix64 finalizer over (fault_seed, gop, picture, slice), mapped to
/// [0, 1) and compared against fault_slice_rate. Identical across all
/// simulated policies and across runs.
inline bool slice_faulted(const SimConfig& config, int gop, int pic,
                          int slice) {
  if (config.fault_slice_rate <= 0.0) return false;
  std::uint64_t x = config.fault_seed ^
                    (static_cast<std::uint64_t>(gop) << 40) ^
                    (static_cast<std::uint64_t>(pic) << 20) ^
                    static_cast<std::uint64_t>(slice);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53 < config.fault_slice_rate;
}

/// Slice cost under the fault model: a corrupt slice costs the (scaled)
/// concealment copy instead of its decode. Bumps `concealed` when faulted.
inline std::int64_t faulted_task_cost(const StreamProfile& profile,
                                      const SliceCost& s,
                                      const SimConfig& config, int gop,
                                      int pic, int slice, int& concealed) {
  if (slice_faulted(config, gop, pic, slice)) {
    ++concealed;
    return static_cast<std::int64_t>(
        static_cast<double>(config.conceal_cost_ns) * config.cost_scale);
  }
  return task_cost(profile, s, config);
}

/// Scan-track helper: when the tracer has an extra track beyond the
/// workers, record the scan process on it (per-GOP kScan spans). Names the
/// track "scan" so the analyzer classifies it as a process track.
class ScanTrack {
 public:
  explicit ScanTrack(const SimConfig& config) : config_(config) {
    if (config.tracer && config.model_scan &&
        config.tracer->tracks() > config.workers) {
      track_ = config.workers;
      if (config.tracer->track(track_).name().empty()) {
        config.tracer->track(track_).set_name("scan");
      }
    }
  }

  /// Records the scan of one GOP ending at virtual time `scan_end`.
  void gop_scanned(int gop, std::int64_t scan_end) {
    if (track_ >= 0 && scan_end > prev_end_) {
      config_.tracer->emit(track_, obs::SpanKind::kScan, prev_end_, scan_end,
                           -1, -1, gop);
      prev_end_ = scan_end;
    }
  }

 private:
  const SimConfig& config_;
  int track_ = -1;
  std::int64_t prev_end_ = 0;
};

/// Ready time of bytes scanned so far: streaming tasks become ready as
/// scanned; the upfront front-end holds everything until the scan finishes.
inline std::int64_t scan_ready_ns(const StreamProfile& profile,
                                  const SimConfig& config, double rate,
                                  std::uint64_t scanned) {
  if (!config.model_scan) return 0;
  const std::uint64_t bytes =
      config.upfront_scan ? profile.stream_bytes : scanned;
  return static_cast<std::int64_t>(static_cast<double>(bytes) / rate);
}

/// Per-picture arrival times for the frame-latency objective, indexed by
/// display order: pictures within a GOP arrive in proportion to their
/// share of its bytes (approximate: equal shares). This is when a
/// picture's bytes pass the scan head — deliberately finer than the
/// per-GOP admission every simulated policy (and every real decoder)
/// uses, so latencies include the GOP-boundary admission delay. Every
/// simulated policy uses this one definition of "arrival" so latencies
/// are comparable.
inline std::vector<std::int64_t> picture_arrivals(
    const StreamProfile& profile, const SimConfig& config, double rate) {
  std::vector<std::int64_t> out;
  std::uint64_t scanned = 0;
  int display_base = 0;
  for (const auto& gop : profile.gops) {
    const std::uint64_t per_pic =
        gop.pictures.empty() ? 0 : gop.stream_bytes / gop.pictures.size();
    const int base = display_base;
    display_base += static_cast<int>(gop.pictures.size());
    out.resize(static_cast<std::size_t>(display_base), 0);
    for (const auto& pc : gop.pictures) {
      scanned += per_pic;
      out[static_cast<std::size_t>(base + pc.temporal_reference)] =
          scan_ready_ns(profile, config, rate, scanned);
    }
  }
  return out;
}

/// Fills the frame-latency objective: per display slot, display minus
/// arrival, clamped at zero (an instant decode can display a frame at its
/// arrival instant).
inline void fill_latencies(const std::vector<std::int64_t>& displays,
                           const std::vector<std::int64_t>& arrival_by_display,
                           SimResult& result) {
  result.frame_latency_ns.resize(displays.size());
  for (std::size_t i = 0; i < displays.size(); ++i) {
    result.frame_latency_ns[i] =
        std::max<std::int64_t>(0, displays[i] - arrival_by_display[i]);
  }
}

}  // namespace pmp2::sched::detail
