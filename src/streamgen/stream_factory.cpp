#include "streamgen/stream_factory.h"

#include <sstream>

#include "streamgen/scene.h"

namespace pmp2::streamgen {

std::string StreamSpec::name() const {
  std::ostringstream os;
  os << width << "x" << height << "_gop" << gop_size;
  return os.str();
}

std::vector<std::uint8_t> generate_stream(const StreamSpec& spec,
                                          mpeg2::EncoderStats* stats) {
  mpeg2::EncoderConfig cfg;
  cfg.width = spec.width;
  cfg.height = spec.height;
  cfg.gop_size = spec.gop_size;
  cfg.bit_rate = spec.bit_rate;
  cfg.rate_control = spec.rate_control;
  cfg.search_range = spec.search_range;
  cfg.intra_vlc_format = spec.intra_vlc_format;
  cfg.alternate_scan = spec.alternate_scan;
  cfg.mpeg1 = spec.mpeg1;
  cfg.slices_per_row = spec.slices_per_row;
  mpeg2::Encoder encoder(cfg);

  SceneConfig scene_cfg;
  scene_cfg.width = spec.width;
  scene_cfg.height = spec.height;
  scene_cfg.seed = spec.seed;
  const SceneGenerator scene(scene_cfg);

  for (int i = 0; i < spec.pictures; ++i) {
    encoder.push_frame(scene.render(i));
  }
  auto stream = encoder.finish();
  if (stats) *stats = encoder.stats();
  return stream;
}

const std::vector<Resolution>& paper_resolutions() {
  static const std::vector<Resolution> r = {
      {176, 120, 1'500'000},
      {352, 240, 5'000'000},
      {704, 480, 5'000'000},
      {1408, 960, 7'000'000},
  };
  return r;
}

std::vector<StreamSpec> table1_specs(int pictures_override) {
  static constexpr int kGopSizes[] = {4, 13, 16, 31};
  std::vector<StreamSpec> out;
  for (const auto& res : paper_resolutions()) {
    for (const int gop : kGopSizes) {
      StreamSpec spec;
      spec.width = res.width;
      spec.height = res.height;
      spec.bit_rate = res.bit_rate;
      spec.gop_size = gop;
      spec.pictures = pictures_override;
      out.push_back(spec);
    }
  }
  return out;
}

}  // namespace pmp2::streamgen
