// Factory for the paper's test streams (Table 1): encodes the synthetic
// scene at the requested resolution / GOP size / bit rate into an MPEG-2
// elementary stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpeg2/encoder.h"

namespace pmp2::streamgen {

struct StreamSpec {
  int width = 352;
  int height = 240;
  int gop_size = 13;       // pictures per GOP (display order)
  int pictures = 60;       // total pictures (paper: 1120)
  std::int64_t bit_rate = 5'000'000;
  std::uint64_t seed = 7;
  int search_range = 7;
  bool rate_control = true;
  bool intra_vlc_format = false;
  bool alternate_scan = false;
  bool mpeg1 = false;  // encode as MPEG-1 (ISO 11172-2)
  int slices_per_row = 1;

  [[nodiscard]] std::string name() const;
};

/// Encodes the synthetic scene per `spec`. `stats` (optional) receives the
/// encoder statistics.
[[nodiscard]] std::vector<std::uint8_t> generate_stream(
    const StreamSpec& spec, mpeg2::EncoderStats* stats = nullptr);

/// The 16 test streams of Table 1 (4 resolutions x 4 GOP sizes). The paper
/// uses 1120 pictures each; benches default to fewer via
/// `pictures_override` so the suite completes on one core.
[[nodiscard]] std::vector<StreamSpec> table1_specs(int pictures_override);

/// The paper's four resolutions with the bit rates it states (5 Mb/s for
/// the middle sizes, 7 Mb/s for 1408x960; the unstated smallest gets a
/// proportional 1.5 Mb/s).
struct Resolution {
  int width, height;
  std::int64_t bit_rate;
};
[[nodiscard]] const std::vector<Resolution>& paper_resolutions();

}  // namespace pmp2::streamgen
