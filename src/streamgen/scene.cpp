#include "streamgen/scene.h"

#include <cmath>

namespace pmp2::streamgen {

namespace {

/// Deterministic lattice hash -> [0, 1).
double lattice(std::uint64_t seed, std::int64_t x, std::int64_t y) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h ^= static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4FULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smooth(double t) { return t * t * (3.0 - 2.0 * t); }

/// One octave of value noise at lattice spacing `cell` (in normalized
/// scene units).
double value_noise(std::uint64_t seed, double u, double v, double cell) {
  const double fx = u / cell;
  const double fy = v / cell;
  const auto x0 = static_cast<std::int64_t>(std::floor(fx));
  const auto y0 = static_cast<std::int64_t>(std::floor(fy));
  const double tx = smooth(fx - static_cast<double>(x0));
  const double ty = smooth(fy - static_cast<double>(y0));
  const double a = lattice(seed, x0, y0);
  const double b = lattice(seed, x0 + 1, y0);
  const double c = lattice(seed, x0, y0 + 1);
  const double d = lattice(seed, x0 + 1, y0 + 1);
  return (a * (1 - tx) + b * tx) * (1 - ty) + (c * (1 - tx) + d * tx) * ty;
}

/// Four octaves, result in [0, 1). The finest octave (~2-pel lattice at
/// 352-wide scale) supplies the flower-garden-like high-frequency detail
/// that keeps the encoded bit rate in the paper's regime; it pans at a
/// slightly different rate (`fine_pan`) than the coarse octaves, the
/// parallax shimmer of real foliage, so block motion estimation cannot
/// cancel the residual completely.
double fbm(std::uint64_t seed, double u, double v, double pan,
           double fine_pan) {
  return 0.42 * value_noise(seed, u + pan, v, 0.11) +
         0.24 * value_noise(seed + 1, u + pan, v, 0.043) +
         0.18 * value_noise(seed + 2, u + pan, v, 0.017) +
         0.16 * value_noise(seed + 3, u + fine_pan, v, 0.006);
}

}  // namespace

mpeg2::FramePtr SceneGenerator::render(int index,
                                       mpeg2::MemoryTracker* tracker) const {
  auto frame = std::make_shared<mpeg2::Frame>(config_.width, config_.height,
                                              tracker);
  const int cw = frame->y_stride();
  const int ch = frame->coded_height();
  // Normalized scene coordinates: 1.0 == 352 source pels, so content is
  // identical across resolutions (the paper's interpolation-scaling).
  const double scale = 352.0 / config_.width;

  // Luma.
  for (int y = 0; y < ch; ++y) {
    std::uint8_t* row = frame->y() + y * cw;
    const double v = y * scale / 352.0;
    // Interlaced capture: odd (bottom-field) lines are half a period later.
    const double t = index + (config_.interlaced && (y & 1) ? 0.5 : 0.0);
    const double pan_bg = config_.pan_pels_per_picture * t / 352.0;
    const double pan_fg = pan_bg * config_.parallax_factor;
    const double fine_bg = pan_bg * 1.15;
    const double fine_fg = pan_fg * 1.15;
    // Foreground band occupies the lower third (the "flower bed").
    const bool fg_band = 3 * y >= 2 * ch;
    for (int x = 0; x < cw; ++x) {
      const double u = x * scale / 352.0;
      double val;
      if (fg_band) {
        val = fbm(config_.seed + 100, u, v, pan_fg, fine_fg);
        val = 0.25 + 0.65 * val;  // brighter, busier texture
      } else {
        val = fbm(config_.seed, u, v, pan_bg, fine_bg);
        // Sky gradient toward the top.
        val = 0.18 + 0.62 * val + 0.20 * (1.0 - v);
      }
      row[x] = mpeg2::clamp_pel(static_cast<int>(16.0 + 219.0 * val));
    }
  }
  // Chroma (half resolution).
  const int ccw = frame->c_stride();
  const int cch = ch / 2;
  for (int y = 0; y < cch; ++y) {
    std::uint8_t* cb = frame->cb() + y * ccw;
    std::uint8_t* cr = frame->cr() + y * ccw;
    const double v = 2.0 * y * scale / 352.0;
    const bool fg_band = 3 * y >= 2 * cch;
    const double t = index + (config_.interlaced && (y & 1) ? 0.5 : 0.0);
    const double pan_bg = config_.pan_pels_per_picture * t / 352.0;
    const double pan_fg = pan_bg * config_.parallax_factor;
    const double fine_bg = pan_bg * 1.15;
    const double fine_fg = pan_fg * 1.15;
    for (int x = 0; x < ccw; ++x) {
      const double u = 2.0 * x * scale / 352.0;
      const double pan = fg_band ? pan_fg : pan_bg;
      const double fine = fg_band ? fine_fg : fine_bg;
      const double t = fbm(config_.seed + 200, u, v, pan, fine);
      // Greens/earth tones in the garden, blue cast in the sky band.
      const double sky = fg_band ? 0.0 : (1.0 - v) * 0.5;
      cb[x] = mpeg2::clamp_pel(
          static_cast<int>(128.0 - 30.0 * t + 40.0 * sky));
      cr[x] = mpeg2::clamp_pel(
          static_cast<int>(128.0 + 24.0 * (t - 0.5) - 20.0 * sky));
    }
  }
  return frame;
}

}  // namespace pmp2::streamgen
