// Synthetic video source for the test streams.
//
// The paper built its streams from a panning "flower garden" clip, repeated
// and rescaled by interpolation so every resolution shows the same content.
// This generator reproduces those properties synthetically: a multi-octave
// value-noise landscape (textured, like foliage) plus a faster-panning
// foreground band (parallax, like the tree/flower bed), both sampled in
// resolution-independent normalized coordinates. Pans are a few pels per
// picture at 352x240 scale, so P/B motion estimation finds real vectors and
// the bit-rate profile resembles natural video rather than noise.
#pragma once

#include <cstdint>

#include "mpeg2/frame.h"

namespace pmp2::streamgen {

struct SceneConfig {
  int width = 352;
  int height = 240;
  std::uint64_t seed = 7;
  double pan_pels_per_picture = 2.4;   // background pan at 352-wide scale
  double parallax_factor = 2.0;        // foreground pans this much faster
  /// Interlaced capture: the bottom field is sampled half a picture period
  /// later than the top field (camera pans between fields), producing the
  /// comb artefacts interlace coding tools exist for.
  bool interlaced = false;
};

class SceneGenerator {
 public:
  explicit SceneGenerator(const SceneConfig& config) : config_(config) {}

  /// Renders picture `index` of the sequence. Pels cover the full coded
  /// (macroblock-padded) area. Deterministic in (config, index).
  [[nodiscard]] mpeg2::FramePtr render(
      int index, mpeg2::MemoryTracker* tracker = nullptr) const;

  [[nodiscard]] const SceneConfig& config() const { return config_; }

 private:
  SceneConfig config_;
};

}  // namespace pmp2::streamgen
