// In-process sampling profiler: SIGPROF-driven stack capture emitting
// collapsed stacks ("frame;frame;frame count") consumable by standard
// flamegraph tooling — the live analogue of the paper's pixie/prof
// instrumented-binary profiles.
//
// Capture is split into an async-signal-safe half and an offline half:
// the SIGPROF handler only claims a preallocated slot with one atomic
// fetch_add and fills it via backtrace(3) (primed at start() so libgcc
// is already loaded — its lazy first-call initialization allocates);
// symbolization (dladdr + __cxa_demangle) and collapsing happen in
// stop()/collapse() on the calling thread. ITIMER_PROF charges against
// process CPU time, so samples land on whichever thread is burning CPU
// — exactly the attribution a decoder profile wants.
//
// One profiler may be active per process at a time (the signal handler
// needs a global); start() fails if another is running.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace pmp2::obs::prof {

struct SamplingOptions {
  int interval_us = 997;    // prime-ish: avoids lockstep with frame cadence
  int max_samples = 65536;  // slots preallocated at start()
  int max_depth = 64;       // frames kept per sample
};

/// Aggregated result: collapsed stack -> sample count.
struct CollapsedProfile {
  std::map<std::string, std::uint64_t> stacks;
  std::uint64_t total = 0;    // samples captured
  std::uint64_t dropped = 0;  // ticks that found the buffer full
};

class SamplingProfiler {
 public:
  SamplingProfiler() = default;
  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Installs the SIGPROF handler and arms ITIMER_PROF. False when
  /// another profiler is active or the platform lacks the machinery.
  bool start(const SamplingOptions& options = {});

  /// Disarms the timer and restores the previous handler. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_; }

  /// Symbolizes and collapses everything captured so far. Call after
  /// stop() (collapsing while sampling would race slot fills).
  [[nodiscard]] CollapsedProfile collapse() const;

  /// Writes "frame;frame;frame count" lines, deterministically sorted.
  static void write_collapsed(std::ostream& os,
                              const CollapsedProfile& profile);

  /// Parses collapsed output (the format pmp2_prof --check validates).
  /// Accepts blank lines and '#' comments; returns false on any
  /// malformed line (message in *error).
  static bool parse_collapsed(const std::string& text, CollapsedProfile* out,
                              std::string* error);

 private:
  SamplingOptions options_;
  std::vector<void*> frames_;   // max_samples * max_depth slots
  std::vector<int> depths_;     // frames captured per slot
  bool running_ = false;
};

}  // namespace pmp2::obs::prof
