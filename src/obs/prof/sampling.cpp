#include "obs/prof/sampling.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <sstream>

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#endif

namespace pmp2::obs::prof {

#if defined(__linux__)

namespace {

/// Handler-visible state. `active` is the rendezvous: the handler loads
/// it once and bails on null; stop() clears it before disarming.
struct HandlerState {
  void** frames = nullptr;
  int* depths = nullptr;
  int max_samples = 0;
  int max_depth = 0;
  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> dropped{0};
};

HandlerState g_state;
std::atomic<HandlerState*> g_active{nullptr};
std::atomic<bool> g_claimed{false};  // one profiler per process
struct sigaction g_prev_action;

void sigprof_handler(int) {
  HandlerState* s = g_active.load(std::memory_order_acquire);
  if (!s) return;
  const std::uint64_t idx = s->next.fetch_add(1, std::memory_order_relaxed);
  if (idx >= static_cast<std::uint64_t>(s->max_samples)) {
    s->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // backtrace(3) after priming is a frame walk: no allocation, no locks.
  s->depths[idx] =
      backtrace(s->frames + idx * static_cast<std::uint64_t>(s->max_depth),
                s->max_depth);
}

/// Best-effort symbol for one return address: demangled function name,
/// else mangled name, else "module+0xoff", else raw hex.
std::string symbolize(void* pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof info);
  const bool have = dladdr(pc, &info) != 0;
  if (have && info.dli_sname) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled) {
      std::string name(demangled);
      std::free(demangled);
      // Collapsed format separators are ';' and ' '; flamegraph tools
      // also treat them as structure inside frames. Scrub.
      for (char& ch : name) {
        if (ch == ';' || ch == ' ') ch = '_';
      }
      return name;
    }
    if (demangled) std::free(demangled);
    return info.dli_sname;
  }
  char buf[32];
  if (have && info.dli_fname) {
    std::snprintf(buf, sizeof buf, "+0x%zx",
                  static_cast<std::size_t>(
                      reinterpret_cast<std::uintptr_t>(pc) -
                      reinterpret_cast<std::uintptr_t>(info.dli_fbase)));
    std::string base = info.dli_fname;
    const std::size_t slash = base.rfind('/');
    if (slash != std::string::npos) base.erase(0, slash + 1);
    return base + buf;
  }
  std::snprintf(buf, sizeof buf, "0x%zx",
                static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(pc)));
  return buf;
}

}  // namespace

SamplingProfiler::~SamplingProfiler() { stop(); }

bool SamplingProfiler::start(const SamplingOptions& options) {
  if (running_) return false;
  bool expected = false;
  if (!g_claimed.compare_exchange_strong(expected, true)) return false;
  options_ = options;
  if (options_.max_samples < 1) options_.max_samples = 1;
  if (options_.max_depth < 2) options_.max_depth = 2;
  if (options_.interval_us < 100) options_.interval_us = 100;
  frames_.assign(static_cast<std::size_t>(options_.max_samples) *
                     static_cast<std::size_t>(options_.max_depth),
                 nullptr);
  depths_.assign(static_cast<std::size_t>(options_.max_samples), 0);

  // Prime backtrace: its first call dlopens libgcc, which allocates —
  // fatal inside a signal handler. After one call it is reentrant.
  void* prime[4];
  backtrace(prime, 4);

  g_state.frames = frames_.data();
  g_state.depths = depths_.data();
  g_state.max_samples = options_.max_samples;
  g_state.max_depth = options_.max_depth;
  g_state.next.store(0, std::memory_order_relaxed);
  g_state.dropped.store(0, std::memory_order_relaxed);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = sigprof_handler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &g_prev_action) != 0) {
    g_claimed.store(false);
    return false;
  }
  g_active.store(&g_state, std::memory_order_release);

  itimerval timer{};
  timer.it_interval.tv_sec = options_.interval_us / 1000000;
  timer.it_interval.tv_usec = options_.interval_us % 1000000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    sigaction(SIGPROF, &g_prev_action, nullptr);
    g_claimed.store(false);
    return false;
  }
  running_ = true;
  return true;
}

void SamplingProfiler::stop() {
  if (!running_) return;
  itimerval off{};
  setitimer(ITIMER_PROF, &off, nullptr);
  g_active.store(nullptr, std::memory_order_release);
  // A tick already in flight sees null `active` and bails; after the
  // sigaction below SIGPROF reverts to its previous disposition.
  sigaction(SIGPROF, &g_prev_action, nullptr);
  g_claimed.store(false);
  running_ = false;
}

CollapsedProfile SamplingProfiler::collapse() const {
  CollapsedProfile out;
  const std::uint64_t claimed = g_state.next.load(std::memory_order_relaxed);
  const std::uint64_t n =
      claimed < static_cast<std::uint64_t>(options_.max_samples)
          ? claimed
          : static_cast<std::uint64_t>(options_.max_samples);
  out.dropped = g_state.dropped.load(std::memory_order_relaxed);
  // Symbol cache: decode runs sample the same few hundred pcs thousands
  // of times.
  std::map<void*, std::string> symbols;
  for (std::uint64_t i = 0; i < n; ++i) {
    const int depth = depths_[i];
    if (depth <= 0) continue;  // slot claimed but capture failed
    void* const* pcs = frames_.data() + i * options_.max_depth;
    // Root-first; skip the innermost 2 frames (the signal trampoline
    // and the handler itself are noise in every stack).
    std::string stack;
    const int skip = depth > 2 ? 2 : depth - 1;
    for (int f = depth - 1; f >= skip; --f) {
      auto it = symbols.find(pcs[f]);
      if (it == symbols.end()) {
        it = symbols.emplace(pcs[f], symbolize(pcs[f])).first;
      }
      if (!stack.empty()) stack += ';';
      stack += it->second;
    }
    if (stack.empty()) continue;
    ++out.stacks[stack];
    ++out.total;
  }
  return out;
}

#else  // !__linux__

SamplingProfiler::~SamplingProfiler() { stop(); }
bool SamplingProfiler::start(const SamplingOptions& options) {
  options_ = options;
  return false;
}
void SamplingProfiler::stop() { running_ = false; }
CollapsedProfile SamplingProfiler::collapse() const { return {}; }

#endif  // __linux__

void SamplingProfiler::write_collapsed(std::ostream& os,
                                       const CollapsedProfile& profile) {
  // std::map iteration is sorted: deterministic output for diffing.
  for (const auto& [stack, count] : profile.stacks) {
    os << stack << " " << count << "\n";
  }
}

bool SamplingProfiler::parse_collapsed(const std::string& text,
                                       CollapsedProfile* out,
                                       std::string* error) {
  *out = CollapsedProfile{};
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      if (error) {
        *error = "line " + std::to_string(lineno) +
                 ": expected 'stack count'";
      }
      return false;
    }
    const std::string stack = line.substr(0, space);
    const std::string count_str = line.substr(space + 1);
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(count_str.c_str(), &end, 10);
    if (!end || *end != '\0' || count == 0) {
      if (error) {
        *error = "line " + std::to_string(lineno) + ": bad count '" +
                 count_str + "'";
      }
      return false;
    }
    out->stacks[stack] += count;
    out->total += count;
  }
  return true;
}

}  // namespace pmp2::obs::prof
