// Hardware/software performance-counter sources (tier 3 of the obs layer).
//
// The paper's evaluation hinges on decomposing decode time into ideal
// compute vs memory-system stalls (§7, TangoLite + pixie). This layer
// provides the live-hardware equivalent: per-thread counter groups read
// through a uniform `CounterSource` interface with three implementations:
//
//   * PerfCounterSource     — perf_event_open(2) self-monitoring groups
//                             (cycles, instructions, cache refs/misses,
//                             stalled-cycles-backend) plus a software
//                             task-clock; values are multiplex-scaled via
//                             TIME_ENABLED/TIME_RUNNING.
//   * SoftwareCounterSource — degraded fallback for PMU-less hosts
//                             (containers, perf_event_paranoid): only the
//                             per-thread CPU clock, via
//                             CLOCK_THREAD_CPUTIME_ID.
//   * FakeCounterSource     — deterministic synthetic counters so the
//                             attribution math upstream (stage_prof,
//                             telemetry windows, analyzer tables) is
//                             testable in CI containers without a PMU.
//
// probe_host() answers, once, "what can this host measure?" — the answer
// is stamped into report/bench identity metadata so bench_check never
// compares counter columns across differently-capable hosts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace pmp2::obs::prof {

/// The fixed counter set. Indices are stable: they appear in JSON
/// documents ("pmp2-prof/1") and in telemetry snapshots by name.
enum class Counter : unsigned {
  kCycles = 0,          // PERF_COUNT_HW_CPU_CYCLES
  kInstructions,        // PERF_COUNT_HW_INSTRUCTIONS
  kCacheRefs,           // PERF_COUNT_HW_CACHE_REFERENCES
  kCacheMisses,         // PERF_COUNT_HW_CACHE_MISSES
  kStalledBackend,      // PERF_COUNT_HW_STALLED_CYCLES_BACKEND
  kTaskClockNs,         // PERF_COUNT_SW_TASK_CLOCK (or thread CPU clock)
  kCount,
};

inline constexpr int kCounterCount = static_cast<int>(Counter::kCount);

[[nodiscard]] constexpr unsigned counter_bit(Counter c) {
  return 1u << static_cast<unsigned>(c);
}

/// All-hardware-counters mask (everything except the task clock).
inline constexpr unsigned kHardwareMask =
    counter_bit(Counter::kCycles) | counter_bit(Counter::kInstructions) |
    counter_bit(Counter::kCacheRefs) | counter_bit(Counter::kCacheMisses) |
    counter_bit(Counter::kStalledBackend);

/// Stable snake_case name used in JSON and telemetry ("cycles", ...).
[[nodiscard]] const char* counter_name(Counter c);

/// One cumulative or delta reading. Only counters in `mask` are valid;
/// the rest read zero.
struct CounterSample {
  std::uint64_t v[kCounterCount] = {};
  unsigned mask = 0;

  [[nodiscard]] std::uint64_t get(Counter c) const {
    return v[static_cast<int>(c)];
  }
  [[nodiscard]] bool has(Counter c) const {
    return (mask & counter_bit(c)) != 0;
  }
  /// this - before, clamped at zero per counter (counters are monotone
  /// but multiplex scaling can jitter a scaled value backwards by a hair).
  [[nodiscard]] CounterSample delta_since(const CounterSample& before) const;
  void accumulate(const CounterSample& d);
};

/// Per-thread counter handle. Must be read from the thread that opened it
/// (perf self-monitoring and CLOCK_THREAD_CPUTIME_ID are both
/// calling-thread scoped).
class ThreadCounters {
 public:
  virtual ~ThreadCounters() = default;
  /// Cumulative values since open. Returns false on read failure (the
  /// sample is zeroed); callers treat that as "counters went away".
  virtual bool read(CounterSample* out) = 0;
  [[nodiscard]] virtual unsigned mask() const = 0;
};

/// Factory for per-thread counter handles. One source is shared by every
/// worker of a run; open_thread() is called on each worker thread.
class CounterSource {
 public:
  virtual ~CounterSource() = default;
  /// Identity string stamped into reports: "perf", "software", "fake".
  [[nodiscard]] virtual const char* name() const = 0;
  /// Counters every open_thread() handle will provide.
  [[nodiscard]] virtual unsigned mask() const = 0;
  /// Opens counters for the *calling* thread. May return nullptr if the
  /// host revoked access between probe and bind; callers degrade to
  /// no-op profiling for that thread.
  virtual std::unique_ptr<ThreadCounters> open_thread() = 0;
};

/// perf_event_open-backed source. Construct via make(), which probes each
/// event on the current thread and keeps only the ones the host grants;
/// returns nullptr when not even the software task clock opens.
class PerfCounterSource : public CounterSource {
 public:
  [[nodiscard]] static std::unique_ptr<PerfCounterSource> make();

  [[nodiscard]] const char* name() const override { return "perf"; }
  [[nodiscard]] unsigned mask() const override { return mask_; }
  std::unique_ptr<ThreadCounters> open_thread() override;

 private:
  explicit PerfCounterSource(unsigned mask) : mask_(mask) {}
  unsigned mask_ = 0;
};

/// Thread CPU clock only; always available.
class SoftwareCounterSource : public CounterSource {
 public:
  [[nodiscard]] const char* name() const override { return "software"; }
  [[nodiscard]] unsigned mask() const override {
    return counter_bit(Counter::kTaskClockNs);
  }
  std::unique_ptr<ThreadCounters> open_thread() override;
};

/// Per-counter increments for FakeCounterSource handles.
struct FakeSteps {
  std::uint64_t cycles = 1000;
  std::uint64_t instructions = 800;
  std::uint64_t cache_refs = 100;
  std::uint64_t cache_misses = 10;
  std::uint64_t stalled_backend = 250;
  std::uint64_t task_clock_ns = 500;
};

/// Deterministic synthetic counters for tests. Every handle counts its
/// reads; read number k (1-based) reports value step(c) * k for each
/// counter c — so the delta between consecutive reads is exactly step(c),
/// and attribution math has exact expected values.
class FakeCounterSource : public CounterSource {
 public:
  using Steps = FakeSteps;
  explicit FakeCounterSource(Steps steps = {},
                             unsigned mask = (1u << kCounterCount) - 1)
      : steps_(steps), mask_(mask) {}

  [[nodiscard]] const char* name() const override { return "fake"; }
  [[nodiscard]] unsigned mask() const override { return mask_; }
  std::unique_ptr<ThreadCounters> open_thread() override;
  /// Total reads across every handle this source produced (test hook).
  [[nodiscard]] std::uint64_t total_reads() const { return total_reads_; }

 private:
  friend class FakeThreadCounters;
  Steps steps_;
  unsigned mask_;
  std::uint64_t total_reads_ = 0;
};

/// What this host can measure — probed once, stamped into identity
/// metadata (report meta, bench meta) and used to pick a source.
struct HostProfile {
  bool perf_available = false;  // perf_event_open works at all (sw clock)
  bool hw_available = false;    // cycles + instructions open
  unsigned counter_mask = 0;    // mask a PerfCounterSource would provide
  int perf_event_paranoid = -1; // /proc/sys/kernel/perf_event_paranoid
  std::string kernel_release;   // uname -r
  std::string source;           // what make_counter_source() will pick
};

/// Probes perf_event_open (opening and closing short-lived events on the
/// calling thread). Cheap enough to call freely, but callers cache it.
[[nodiscard]] HostProfile probe_host();

/// "perf" when hardware counters are available, else "software". Never
/// returns nullptr.
[[nodiscard]] std::unique_ptr<CounterSource> make_counter_source();

}  // namespace pmp2::obs::prof
