#include "obs/prof/stage_prof.h"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "obs/json_parse.h"

namespace pmp2::obs::prof {

thread_local WorkerProf* tls_worker_prof = nullptr;

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kScan:    return "scan";
    case Stage::kVlc:     return "vlc";
    case Stage::kIdct:    return "idct";
    case Stage::kMc:      return "mc";
    case Stage::kConceal: return "conceal";
    case Stage::kOther:   return "other";
    case Stage::kCount:   break;
  }
  return "?";
}

namespace {

/// stage_name inverse; Stage::kCount on unknown names.
Stage stage_from_name(const std::string& name) {
  for (int i = 0; i < kStageCount; ++i) {
    if (name == stage_name(static_cast<Stage>(i))) {
      return static_cast<Stage>(i);
    }
  }
  return Stage::kCount;
}

}  // namespace

Stage WorkerProf::switch_stage(Stage next) {
  const Stage prev = cur_;
  if (tc_) {
    CounterSample now;
    if (tc_->read(&now)) {
      const CounterSample d = now.delta_since(last_);
      stages_[static_cast<int>(cur_)].counters.accumulate(d);
      task_accum_.accumulate(d);
      last_ = now;
    }
  }
  if (next != cur_) {
    ++stages_[static_cast<int>(next)].enters;
    cur_ = next;
  }
  return prev;
}

CounterSample WorkerProf::take_task_delta() {
  switch_stage(cur_);  // flush the tail into the current stage
  CounterSample d = task_accum_;
  task_accum_ = CounterSample{};
  return d;
}

StageProfiler::StageProfiler(std::unique_ptr<CounterSource> source, int slots)
    : source_(std::move(source)), slots_(slots > 0 ? slots : 1) {
  assert(source_ != nullptr);
}

StageProfiler::~StageProfiler() = default;

WorkerProf* StageProfiler::bind(int slot) {
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) return nullptr;
  WorkerProf& w = slots_[static_cast<std::size_t>(slot)];
  const bool first = !w.counting();
  w.tc_ = source_->open_thread();
  w.last_ = CounterSample{};
  w.cur_ = Stage::kOther;
  if (w.tc_) {
    w.tc_->read(&w.last_);
    if (first) ++bound_;  // benign: binds race only across distinct slots
  }
  tls_worker_prof = w.tc_ ? &w : nullptr;
  return &w;
}

void StageProfiler::unbind() { tls_worker_prof = nullptr; }

ProfSummary StageProfiler::aggregate() const {
  ProfSummary s;
  s.source = source_->name();
  s.mask = source_->mask();
  s.workers = bound_;
  for (const WorkerProf& w : slots_) {
    for (int i = 0; i < kStageCount; ++i) {
      s.stages[i].counters.accumulate(w.stages_[i].counters);
      s.stages[i].enters += w.stages_[i].enters;
    }
  }
  for (int i = 0; i < kStageCount; ++i) {
    s.total.accumulate(s.stages[i].counters);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Derived ratios

namespace {

double ratio(const CounterSample& s, Counter num, Counter den) {
  if (!s.has(num) || !s.has(den) || s.get(den) == 0) return 0.0;
  return static_cast<double>(s.get(num)) / static_cast<double>(s.get(den));
}

}  // namespace

double ProfSummary::ipc(const CounterSample& s) {
  return ratio(s, Counter::kInstructions, Counter::kCycles);
}

double ProfSummary::miss_rate(const CounterSample& s) {
  return ratio(s, Counter::kCacheMisses, Counter::kCacheRefs);
}

double ProfSummary::stall_frac(const CounterSample& s) {
  return ratio(s, Counter::kStalledBackend, Counter::kCycles);
}

// ---------------------------------------------------------------------------
// Serialization

namespace {

void write_sample_fields(JsonWriter& w, const CounterSample& s) {
  for (int i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    if (s.has(c)) w.key(counter_name(c)).value(s.get(c));
  }
}

void parse_sample_fields(const JsonValue& obj, CounterSample* out) {
  *out = CounterSample{};
  for (int i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    const JsonValue* v = obj.find(counter_name(c));
    if (v && v->is_number()) {
      out->v[i] = static_cast<std::uint64_t>(v->as_double());
      out->mask |= counter_bit(c);
    }
  }
}

}  // namespace

void write_prof_json(std::ostream& os, const ProfSummary& summary) {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(ProfSummary::kSchema);
  w.key("source").value(summary.source);
  w.key("mask").value(static_cast<std::uint64_t>(summary.mask));
  w.key("workers").value(summary.workers);
  if (!summary.kernels_backend.empty()) {
    w.key("kernels_backend").value(summary.kernels_backend);
  }
  w.key("stages").begin_array();
  for (int i = 0; i < kStageCount; ++i) {
    const StageTotals& st = summary.stages[i];
    w.begin_object();
    w.key("stage").value(stage_name(static_cast<Stage>(i)));
    w.key("enters").value(st.enters);
    write_sample_fields(w, st.counters);
    w.end_object();
  }
  w.end_array();
  w.key("total").begin_object();
  write_sample_fields(w, summary.total);
  w.end_object();
  w.end_object();
  os << "\n";
}

bool parse_prof_json(const JsonValue& doc, ProfSummary* out,
                     std::string* error) {
  *out = ProfSummary{};
  if (doc.get_string("schema") != ProfSummary::kSchema) {
    if (error) {
      *error = "schema is '" + doc.get_string("schema") + "', expected '" +
               ProfSummary::kSchema + "'";
    }
    return false;
  }
  out->source = doc.get_string("source", "?");
  out->mask = static_cast<unsigned>(doc.get_int("mask", 0));
  out->workers = static_cast<int>(doc.get_int("workers", 0));
  out->kernels_backend = doc.get_string("kernels_backend", "");
  const JsonValue* stages = doc.find("stages");
  if (!stages || !stages->is_array()) {
    if (error) *error = "missing stages array";
    return false;
  }
  for (const JsonValue& row : stages->items) {
    if (!row.is_object()) continue;
    const Stage s = stage_from_name(row.get_string("stage"));
    if (s == Stage::kCount) continue;  // future stages parse forward
    StageTotals& st = out->stages[static_cast<int>(s)];
    st.enters = static_cast<std::uint64_t>(row.get_int("enters", 0));
    parse_sample_fields(row, &st.counters);
  }
  if (const JsonValue* total = doc.find("total"); total && total->is_object()) {
    parse_sample_fields(*total, &out->total);
  } else {
    for (int i = 0; i < kStageCount; ++i) {
      out->total.accumulate(out->stages[i].counters);
    }
  }
  return true;
}

bool load_prof_json(const std::string& path, ProfSummary* out,
                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  std::string parse_error;
  if (!json_parse(buf.str(), doc, &parse_error)) {
    if (error) *error = path + ": " + parse_error;
    return false;
  }
  return parse_prof_json(doc, out, error);
}

void write_prof_text(std::ostream& os, const ProfSummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "counter profile: source=%s workers=%d%s%s\n",
                s.source.c_str(), s.workers,
                s.kernels_backend.empty() ? "" : " backend=",
                s.kernels_backend.c_str());
  os << buf;
  const std::uint64_t total_clock = s.total.get(Counter::kTaskClockNs);
  const std::uint64_t total_cycles = s.total.get(Counter::kCycles);
  // Share of a stage: by cycles on PMU hosts, by task clock otherwise.
  const bool by_cycles = s.has_hw() && total_cycles > 0;
  os << "stage     enters        clock_ms";
  if (s.has_hw()) os << "      mcycles     ipc   miss%  stall%";
  os << "   share%\n";
  for (int i = 0; i < kStageCount; ++i) {
    const StageTotals& st = s.stages[i];
    const CounterSample& c = st.counters;
    std::snprintf(buf, sizeof buf, "%-8s %7llu %15.3f",
                  stage_name(static_cast<Stage>(i)),
                  static_cast<unsigned long long>(st.enters),
                  static_cast<double>(c.get(Counter::kTaskClockNs)) / 1e6);
    os << buf;
    if (s.has_hw()) {
      std::snprintf(buf, sizeof buf, " %12.3f %7.3f %7.2f %7.2f",
                    static_cast<double>(c.get(Counter::kCycles)) / 1e6,
                    ProfSummary::ipc(c), 100.0 * ProfSummary::miss_rate(c),
                    100.0 * ProfSummary::stall_frac(c));
      os << buf;
    }
    const double share =
        by_cycles
            ? (total_cycles
                   ? 100.0 * static_cast<double>(c.get(Counter::kCycles)) /
                         static_cast<double>(total_cycles)
                   : 0.0)
            : (total_clock
                   ? 100.0 *
                         static_cast<double>(c.get(Counter::kTaskClockNs)) /
                         static_cast<double>(total_clock)
                   : 0.0);
    std::snprintf(buf, sizeof buf, " %8.2f\n", share);
    os << buf;
  }
  if (s.has_hw()) {
    // The paper's §7 headline: how much of the actual time is ideal
    // compute vs memory-system stalls. stalled-cycles-backend is the
    // live-PMU analogue of its TangoLite memory-stall attribution.
    const double stall = ProfSummary::stall_frac(s.total);
    std::snprintf(buf, sizeof buf,
                  "ideal-vs-stall split (paper Sec. 7): ideal %.1f%% of cycles, "
                  "backend stalls %.1f%% (ipc %.3f, miss rate %.2f%%)\n",
                  100.0 * (1.0 - stall), 100.0 * stall,
                  ProfSummary::ipc(s.total),
                  100.0 * ProfSummary::miss_rate(s.total));
    os << buf;
  } else {
    os << "hardware counters unavailable (source=" << s.source
       << "): per-stage CPU-clock shares only; the Sec. 7 ideal-vs-stall "
          "split needs a PMU-capable host\n";
  }
}

}  // namespace pmp2::obs::prof
