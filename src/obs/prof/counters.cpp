#include "obs/prof/counters.h"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace pmp2::obs::prof {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kCycles:         return "cycles";
    case Counter::kInstructions:   return "instructions";
    case Counter::kCacheRefs:      return "cache_refs";
    case Counter::kCacheMisses:    return "cache_misses";
    case Counter::kStalledBackend: return "stalled_backend";
    case Counter::kTaskClockNs:    return "task_clock_ns";
    case Counter::kCount:          break;
  }
  return "?";
}

CounterSample CounterSample::delta_since(const CounterSample& before) const {
  CounterSample d;
  d.mask = mask;
  for (int i = 0; i < kCounterCount; ++i) {
    d.v[i] = v[i] >= before.v[i] ? v[i] - before.v[i] : 0;
  }
  return d;
}

void CounterSample::accumulate(const CounterSample& d) {
  mask |= d.mask;
  for (int i = 0; i < kCounterCount; ++i) v[i] += d.v[i];
}

namespace {

/// Monotone ns from the calling thread's CPU clock; the portable
/// task-clock stand-in every source can provide.
std::uint64_t thread_cpu_ns() {
  timespec ts{};
#if defined(CLOCK_THREAD_CPUTIME_ID)
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
#endif
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

// ---------------------------------------------------------------------------
// SoftwareCounterSource

namespace {

class SoftwareThreadCounters final : public ThreadCounters {
 public:
  SoftwareThreadCounters() : base_ns_(thread_cpu_ns()) {}
  bool read(CounterSample* out) override {
    *out = CounterSample{};
    out->mask = counter_bit(Counter::kTaskClockNs);
    const std::uint64_t now = thread_cpu_ns();
    out->v[static_cast<int>(Counter::kTaskClockNs)] =
        now >= base_ns_ ? now - base_ns_ : 0;
    return true;
  }
  [[nodiscard]] unsigned mask() const override {
    return counter_bit(Counter::kTaskClockNs);
  }

 private:
  std::uint64_t base_ns_;
};

}  // namespace

std::unique_ptr<ThreadCounters> SoftwareCounterSource::open_thread() {
  return std::make_unique<SoftwareThreadCounters>();
}

// ---------------------------------------------------------------------------
// FakeCounterSource

namespace {
class FakeThreadCountersImpl;
}  // namespace

class FakeThreadCounters final : public ThreadCounters {
 public:
  FakeThreadCounters(FakeCounterSource* src, unsigned mask)
      : src_(src), mask_(mask) {}
  bool read(CounterSample* out) override {
    ++reads_;
    ++src_->total_reads_;
    *out = CounterSample{};
    out->mask = mask_;
    const FakeCounterSource::Steps& s = src_->steps_;
    const std::uint64_t step[kCounterCount] = {
        s.cycles, s.instructions, s.cache_refs,
        s.cache_misses, s.stalled_backend, s.task_clock_ns};
    for (int i = 0; i < kCounterCount; ++i) {
      if (mask_ & (1u << i)) out->v[i] = step[i] * reads_;
    }
    return true;
  }
  [[nodiscard]] unsigned mask() const override { return mask_; }

 private:
  FakeCounterSource* src_;
  unsigned mask_;
  std::uint64_t reads_ = 0;
};

std::unique_ptr<ThreadCounters> FakeCounterSource::open_thread() {
  return std::make_unique<FakeThreadCounters>(this, mask_);
}

// ---------------------------------------------------------------------------
// PerfCounterSource

#if defined(__linux__)

namespace {

struct HwEvent {
  Counter counter;
  std::uint32_t type;
  std::uint64_t config;
};

/// The hardware group, in leader-first order. Cycles leads: if the host
/// cannot count cycles there is no group worth having.
constexpr HwEvent kHwEvents[] = {
    {Counter::kCycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {Counter::kInstructions, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {Counter::kCacheRefs, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {Counter::kCacheMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {Counter::kStalledBackend, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

int perf_open(std::uint32_t type, std::uint64_t config, int group_fd,
              std::uint64_t read_format) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;  // paranoid>=1 hosts reject kernel counting
  attr.exclude_hv = 1;
  attr.read_format = read_format;
  // pid=0, cpu=-1: measure the calling thread wherever it runs.
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0ul));
}

constexpr std::uint64_t kGroupFormat = PERF_FORMAT_GROUP |
                                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                                       PERF_FORMAT_TOTAL_TIME_RUNNING;

/// Hardware group + software task clock for one thread. The group is read
/// with one read(2); multiplexed values are scaled by enabled/running.
class PerfThreadCounters final : public ThreadCounters {
 public:
  /// Opens events for `mask` on the calling thread; returns nullptr when
  /// the leader fails (host revoked access since probe).
  static std::unique_ptr<PerfThreadCounters> open(unsigned mask) {
    auto tc = std::unique_ptr<PerfThreadCounters>(new PerfThreadCounters);
    for (const HwEvent& e : kHwEvents) {
      if (!(mask & counter_bit(e.counter))) continue;
      const int fd =
          perf_open(e.type, e.config, tc->group_fd_, kGroupFormat);
      if (fd < 0) {
        // Leader failure kills the hardware group; member failure just
        // drops that counter (probe raced a sysctl change).
        if (tc->group_fd_ < 0) break;
        continue;
      }
      if (tc->group_fd_ < 0) tc->group_fd_ = fd;
      tc->group_members_.push_back({e.counter, fd});
      tc->mask_ |= counter_bit(e.counter);
    }
    if (mask & counter_bit(Counter::kTaskClockNs)) {
      tc->clock_fd_ = perf_open(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK,
                                -1, 0);
      if (tc->clock_fd_ >= 0) tc->mask_ |= counter_bit(Counter::kTaskClockNs);
    }
    if (tc->mask_ == 0) return nullptr;
    return tc;
  }

  ~PerfThreadCounters() override {
    for (const Member& m : group_members_) {
      if (m.fd != group_fd_) ::close(m.fd);
    }
    if (group_fd_ >= 0) ::close(group_fd_);
    if (clock_fd_ >= 0) ::close(clock_fd_);
  }

  bool read(CounterSample* out) override {
    *out = CounterSample{};
    out->mask = mask_;
    if (group_fd_ >= 0) {
      // struct read_format { u64 nr, time_enabled, time_running, values[]; }
      std::uint64_t buf[3 + 2 * kCounterCount] = {};
      const ssize_t want = static_cast<ssize_t>(
          (3 + group_members_.size()) * sizeof(std::uint64_t));
      if (::read(group_fd_, buf, sizeof buf) < want) return false;
      const std::uint64_t enabled = buf[1], running = buf[2];
      const double scale =
          (running > 0 && enabled > running)
              ? static_cast<double>(enabled) / static_cast<double>(running)
              : 1.0;
      for (std::size_t i = 0; i < group_members_.size() && i < buf[0]; ++i) {
        const double scaled = static_cast<double>(buf[3 + i]) * scale;
        out->v[static_cast<int>(group_members_[i].counter)] =
            static_cast<std::uint64_t>(scaled);
      }
    }
    if (clock_fd_ >= 0) {
      std::uint64_t ns = 0;
      if (::read(clock_fd_, &ns, sizeof ns) ==
          static_cast<ssize_t>(sizeof ns)) {
        out->v[static_cast<int>(Counter::kTaskClockNs)] = ns;
      }
    }
    return true;
  }

  [[nodiscard]] unsigned mask() const override { return mask_; }

 private:
  PerfThreadCounters() = default;
  struct Member {
    Counter counter;
    int fd;
  };
  std::vector<Member> group_members_;
  int group_fd_ = -1;
  int clock_fd_ = -1;
  unsigned mask_ = 0;
};

/// Which events open on this thread right now? Opens and closes a
/// throwaway group.
unsigned probe_perf_mask() {
  unsigned mask = 0;
  int group_fd = -1;
  std::vector<int> fds;
  for (const HwEvent& e : kHwEvents) {
    const int fd = perf_open(e.type, e.config, group_fd, kGroupFormat);
    if (fd < 0) {
      if (group_fd < 0) break;  // no leader, no group
      continue;
    }
    if (group_fd < 0) group_fd = fd;
    fds.push_back(fd);
    mask |= counter_bit(e.counter);
  }
  const int clock_fd =
      perf_open(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, -1, 0);
  if (clock_fd >= 0) {
    mask |= counter_bit(Counter::kTaskClockNs);
    ::close(clock_fd);
  }
  for (int fd : fds) {
    if (fd != group_fd) ::close(fd);
  }
  if (group_fd >= 0) ::close(group_fd);
  return mask;
}

int read_paranoid() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (!f) return -1;
  int value = -1;
  if (std::fscanf(f, "%d", &value) != 1) value = -1;
  std::fclose(f);
  return value;
}

}  // namespace

#endif  // __linux__

std::unique_ptr<PerfCounterSource> PerfCounterSource::make() {
#if defined(__linux__)
  const unsigned mask = probe_perf_mask();
  if (mask == 0) return nullptr;
  return std::unique_ptr<PerfCounterSource>(new PerfCounterSource(mask));
#else
  return nullptr;
#endif
}

std::unique_ptr<ThreadCounters> PerfCounterSource::open_thread() {
#if defined(__linux__)
  return PerfThreadCounters::open(mask_);
#else
  return nullptr;
#endif
}

HostProfile probe_host() {
  HostProfile hp;
#if defined(__linux__)
  utsname un{};
  if (uname(&un) == 0) hp.kernel_release = un.release;
  hp.perf_event_paranoid = read_paranoid();
  hp.counter_mask = probe_perf_mask();
  hp.perf_available = hp.counter_mask != 0;
  hp.hw_available = (hp.counter_mask & counter_bit(Counter::kCycles)) &&
                    (hp.counter_mask & counter_bit(Counter::kInstructions));
#endif
  hp.source = hp.hw_available ? "perf" : "software";
  return hp;
}

std::unique_ptr<CounterSource> make_counter_source() {
  const HostProfile hp = probe_host();
  if (hp.hw_available) {
    if (auto perf = PerfCounterSource::make()) return perf;
  }
  // Degraded mode: the thread CPU clock needs no kernel support at all,
  // and is cheaper to read than a perf software event.
  return std::make_unique<SoftwareCounterSource>();
}

}  // namespace pmp2::obs::prof
