// Per-stage counter attribution over the decode pipeline.
//
// The paper decomposes decode time per functional stage (scan, VLC
// decode, IDCT, motion compensation) to locate the memory-bound parts
// (§7). This layer reproduces that decomposition on live counters: each
// worker thread binds a WorkerProf (which opens per-thread counters from
// a shared CounterSource), and the mpeg2 core marks stage boundaries
// with StageScope — a TLS-checked RAII guard that costs one TLS load and
// a branch when profiling is off, so the hot path needs no signature
// changes and no #ifdefs.
//
// Attribution model: counters are read at every stage transition; the
// delta since the previous read is charged to the stage being left.
// Totals accumulate per (worker, stage); StageProfiler::aggregate()
// sums across workers after they join. Per-task deltas
// (take_task_delta) feed the live telemetry counter columns.
//
// Reading counters at block granularity is deliberate and expensive
// (two reads per scope; a perf group read is ~1us) — stage profiling is
// opt-in (`parallel_playback --prof-counters`), like the paper's
// TangoLite runs were a separate, slower experiment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/prof/counters.h"

namespace pmp2::obs {
class JsonValue;
}  // namespace pmp2::obs

namespace pmp2::obs::prof {

/// Pipeline stages, in paper order. kOther absorbs everything between
/// marked regions (dispatch, header parse, reference management).
enum class Stage : unsigned {
  kScan = 0,   // startcode scan / demux (producer thread)
  kVlc,        // variable-length block decode
  kIdct,       // inverse DCT + store
  kMc,         // motion compensation / prediction
  kConceal,    // error concealment
  kOther,
  kCount,
};

inline constexpr int kStageCount = static_cast<int>(Stage::kCount);

[[nodiscard]] const char* stage_name(Stage s);

/// Accumulated counters for one stage.
struct StageTotals {
  CounterSample counters;
  std::uint64_t enters = 0;
};

/// One worker thread's attribution state. Bound (and only touched) by
/// the thread that called StageProfiler::bind(); aggregate readers wait
/// for the worker to unbind/join first.
class WorkerProf {
 public:
  /// Charges the delta since the last read to the current stage and
  /// enters `next`. Returns the previous stage (for scoped restore).
  Stage switch_stage(Stage next);

  /// Flush + return all counters accumulated since the previous take
  /// (per-task delta for telemetry). Zero sample when counters are
  /// unavailable on this thread.
  CounterSample take_task_delta();

  [[nodiscard]] const StageTotals& stage(Stage s) const {
    return stages_[static_cast<int>(s)];
  }
  [[nodiscard]] bool counting() const { return tc_ != nullptr; }

 private:
  friend class StageProfiler;
  std::unique_ptr<ThreadCounters> tc_;
  CounterSample last_;
  CounterSample task_accum_;
  Stage cur_ = Stage::kOther;
  StageTotals stages_[kStageCount];
};

/// The TLS hook StageScope reads. Null (profiling off) on any thread
/// that has not bound a WorkerProf.
extern thread_local WorkerProf* tls_worker_prof;

/// Aggregated profile of one run, serializable as "pmp2-prof/1".
struct ProfSummary {
  static constexpr const char* kSchema = "pmp2-prof/1";

  std::string source;           // CounterSource name: perf|software|fake
  unsigned mask = 0;            // counters present in the samples
  int workers = 0;              // worker slots that bound counters
  std::string kernels_backend;  // identity: which kernel backend ran

  StageTotals stages[kStageCount];
  CounterSample total;          // sum over stages

  /// Derived per-sample ratios; 0 when the inputs are not in `mask`.
  [[nodiscard]] static double ipc(const CounterSample& s);
  [[nodiscard]] static double miss_rate(const CounterSample& s);
  [[nodiscard]] static double stall_frac(const CounterSample& s);
  [[nodiscard]] bool has_hw() const {
    return (mask & counter_bit(Counter::kCycles)) &&
           (mask & counter_bit(Counter::kInstructions));
  }
};

/// Owns the counter source and per-worker slots for one run (or several
/// sequential runs re-binding the same slots).
class StageProfiler {
 public:
  /// `slots` is the maximum concurrently-bound threads (workers + the
  /// scan producer). `source` must not be null.
  StageProfiler(std::unique_ptr<CounterSource> source, int slots);
  ~StageProfiler();

  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  /// Opens counters for the calling thread on slot `slot` (0-based) and
  /// installs the TLS hook. Rebinding a slot (sequential runs) keeps its
  /// accumulated stage totals. Returns the bound WorkerProf, or nullptr
  /// when `slot` is out of range.
  WorkerProf* bind(int slot);

  /// Clears the calling thread's TLS hook (call before the thread
  /// exits; bind() on another run installs it again).
  static void unbind();

  [[nodiscard]] const char* source_name() const { return source_->name(); }
  [[nodiscard]] unsigned mask() const { return source_->mask(); }
  [[nodiscard]] int slots() const { return static_cast<int>(slots_.size()); }

  /// Sums all slots. Call after worker threads have joined.
  [[nodiscard]] ProfSummary aggregate() const;

 private:
  std::unique_ptr<CounterSource> source_;
  std::vector<WorkerProf> slots_;
  int bound_ = 0;  // distinct slots ever bound
};

/// RAII stage marker. One TLS load + branch when profiling is off.
class StageScope {
 public:
  explicit StageScope(Stage s) : w_(tls_worker_prof) {
    if (w_) prev_ = w_->switch_stage(s);
  }
  ~StageScope() {
    if (w_) w_->switch_stage(prev_);
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  WorkerProf* w_;
  Stage prev_ = Stage::kOther;
};

/// Serialization: deterministic "pmp2-prof/1" JSON document.
void write_prof_json(std::ostream& os, const ProfSummary& summary);
bool parse_prof_json(const JsonValue& doc, ProfSummary* out,
                     std::string* error);
bool load_prof_json(const std::string& path, ProfSummary* out,
                    std::string* error);

/// Human-readable per-stage table + the paper-§7 ideal-vs-stall split
/// (pmp2_analyze --prof, parallel_playback --prof-counters).
void write_prof_text(std::ostream& os, const ProfSummary& summary);

}  // namespace pmp2::obs::prof
