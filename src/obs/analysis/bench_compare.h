// Bench-report regression checking and suite aggregation (tools/bench_check
// and scripts/bench_all.sh).
//
// Every bench binary emits one RunReport document tagged
// "pmp2-bench-report/1"; bench_all.sh aggregates them into a suite document
// tagged "pmp2-bench-suite/1" whose "reports" array embeds the per-bench
// documents verbatim. compare_reports() diffs two documents (report vs
// report, or suite vs suite, matched by tool name):
//
//   * rows are matched by their identity fields — strings, bools, and any
//     number whose name does not look like a measurement (workers, gop,
//     width, checksum, ...);
//   * measurement fields (names ending in _ns/_s/_bytes or containing
//     per_second/speedup/ratio/utilization/...) are compared with a
//     relative tolerance; the direction (higher- or lower-is-better) is
//     inferred from the name;
//   * a candidate row or report missing from the baseline's set is only a
//     note, but a baseline row missing from the candidate is a regression
//     (coverage loss), as is any metric worse than tolerance allows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/json_parse.h"

namespace pmp2::obs::analysis {

inline constexpr const char* kSuiteSchema = "pmp2-bench-suite/1";

/// True when `name` denotes a measurement (comparable) rather than an
/// identity field. Exposed for tests.
[[nodiscard]] bool is_metric_field(const std::string& name);

/// True when a larger value of metric `name` is better. Exposed for tests.
[[nodiscard]] bool metric_higher_is_better(const std::string& name);

/// True when metric `name` is a hardware-counter column (cycles,
/// instructions, ipc, cache/stall counters). Counter columns are only
/// compared between runs whose meta.counter_source matches — a perf host
/// and a software-fallback host measure different things. Exposed for
/// tests.
[[nodiscard]] bool is_counter_metric(const std::string& name);

struct CompareOptions {
  /// Allowed relative change in the "worse" direction before a metric
  /// counts as a regression.
  double default_tolerance = 0.10;
  /// Per-metric overrides (keyed by field name), e.g. {"wall_s": 0.25}.
  std::map<std::string, double> tolerance;
  /// When true, improvements beyond tolerance are also listed (as notes).
  bool report_improvements = false;
  /// When true, out-of-tolerance metric changes are advisory: listed (in
  /// CompareResult::advisories) but not counted against passed(). Row and
  /// report identity stays strict — coverage loss still fails. CI uses this
  /// for the bench stage, where shared-runner timing noise would otherwise
  /// make metric tolerances flaky.
  bool advisory_metrics = false;

  [[nodiscard]] double tolerance_for(const std::string& metric) const {
    auto it = tolerance.find(metric);
    return it != tolerance.end() ? it->second : default_tolerance;
  }
};

struct MetricDiff {
  std::string tool;
  std::string row_key;  // "workers=4|policy=improved|..."
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_delta = 0.0;  // (candidate - baseline) / |baseline|
  bool higher_better = false;
  bool regression = false;
};

struct CompareResult {
  bool ok = false;      // comparison ran (schemas matched, JSON valid)
  std::string error;
  int reports = 0;      // report pairs compared
  int rows = 0;         // row pairs compared
  int metrics = 0;      // metric values compared
  std::vector<MetricDiff> regressions;
  std::vector<MetricDiff> advisories;     // only with advisory_metrics
  std::vector<MetricDiff> improvements;   // only when requested
  std::vector<std::string> notes;         // structural mismatches, etc.
  std::vector<std::string> coverage_loss; // baseline rows/reports gone
  /// Run-identity conflicts (e.g. the two documents were produced on
  /// different kernel backends): the runs are different experiments, so
  /// their metric deltas are suppressed and the comparison fails here
  /// instead. Reports without identity meta (older baselines) compare
  /// normally.
  std::vector<std::string> identity_mismatch;

  [[nodiscard]] bool passed() const {
    return ok && regressions.empty() && coverage_loss.empty() &&
           identity_mismatch.empty();
  }
};

/// Diffs candidate against baseline. Both must carry matching schema tags
/// (two reports or two suites).
[[nodiscard]] CompareResult compare_reports(const JsonValue& baseline,
                                            const JsonValue& candidate,
                                            const CompareOptions& options = {});

/// Convenience: load both files, parse, compare.
[[nodiscard]] CompareResult compare_report_files(
    const std::string& baseline_path, const std::string& candidate_path,
    const CompareOptions& options = {});

void write_compare_text(std::ostream& os, const CompareResult& r);

/// One bench document to embed in a suite.
struct SuiteEntry {
  std::string source;  // file path, recorded in the suite for provenance
  std::string raw;     // the document's JSON text, embedded verbatim
};

/// Validates each entry (parses, schema == pmp2-bench-report/1) and writes
/// the aggregate suite document. Returns false (with `error`) on the first
/// invalid entry; nothing is written in that case.
[[nodiscard]] bool write_suite(std::ostream& os,
                               const std::vector<SuiteEntry>& entries,
                               std::string* error = nullptr);

}  // namespace pmp2::obs::analysis
