#include "obs/analysis/analyzer.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>
#include <utility>

#include "obs/json.h"

namespace pmp2::obs::analysis {

namespace {

bool is_process_track(const std::string& name) {
  return name == "scan" || name == "display";
}

/// True for spans the analyzer treats as units of work. Picture spans are
/// excluded: they are nested inside GOP task spans and would double-count.
bool is_task_span(const Span& s) {
  switch (s.kind) {
    case SpanKind::kScan:
    case SpanKind::kGopTask:
    case SpanKind::kSliceTask:
    case SpanKind::kDisplay:
    case SpanKind::kConceal:
      return true;
    default:
      return false;
  }
}

/// Total length of the union of [begin, end) intervals. Robust to nested
/// and overlapping spans on one track.
std::int64_t interval_union_ns(
    std::vector<std::pair<std::int64_t, std::int64_t>>& iv) {
  if (iv.empty()) return 0;
  std::sort(iv.begin(), iv.end());
  std::int64_t total = 0;
  std::int64_t cur_begin = iv.front().first;
  std::int64_t cur_end = iv.front().second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > cur_end) {
      total += cur_end - cur_begin;
      cur_begin = iv[i].first;
      cur_end = iv[i].second;
    } else {
      cur_end = std::max(cur_end, iv[i].second);
    }
  }
  total += cur_end - cur_begin;
  return total;
}

struct PathSpan {
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  int track = 0;
  bool is_wait = false;
  bool is_input = false;  // span lives on the scan (input stage) track
};

/// Backward critical-path walk over worker-track spans.
///
/// From the last task to finish, repeatedly step to the predecessor: the
/// latest span on the same track ending at or before the current begin.
/// When that predecessor is a wait, the blocking dependency lived on
/// another track — jump to the latest *task* completion anywhere that
/// falls inside or before the wait, and continue from there. Busy time is
/// accumulated over the task spans visited; the walk ends at the start of
/// the trace.
void critical_path(const std::vector<std::vector<PathSpan>>& by_track,
                   std::vector<PathSpan>& all_tasks, std::int64_t* busy_ns,
                   std::size_t* steps, std::int64_t* input_ns) {
  *busy_ns = 0;
  *steps = 0;
  *input_ns = 0;
  if (all_tasks.empty()) return;
  std::sort(all_tasks.begin(), all_tasks.end(),
            [](const PathSpan& a, const PathSpan& b) {
              return a.end_ns < b.end_ns;
            });
  // Latest task completion at or before a given time, across all tracks.
  auto latest_task_before = [&](std::int64_t t) -> const PathSpan* {
    auto it = std::upper_bound(
        all_tasks.begin(), all_tasks.end(), t,
        [](std::int64_t v, const PathSpan& s) { return v < s.end_ns; });
    if (it == all_tasks.begin()) return nullptr;
    return &*(it - 1);
  };
  // Latest span (task or wait) on `track` ending at or before `t`.
  auto pred_on_track = [&](int track, std::int64_t t) -> const PathSpan* {
    const auto& spans = by_track[static_cast<std::size_t>(track)];
    auto it = std::upper_bound(
        spans.begin(), spans.end(), t,
        [](std::int64_t v, const PathSpan& s) { return v < s.end_ns; });
    if (it == spans.begin()) return nullptr;
    return &*(it - 1);
  };

  const PathSpan* cur = &all_tasks.back();
  std::size_t guard = 0;
  const std::size_t max_steps = 4 * all_tasks.size() + 16;
  while (cur && guard++ < max_steps) {
    if (!cur->is_wait) {
      *busy_ns += cur->end_ns - cur->begin_ns;
      if (cur->is_input) *input_ns += cur->end_ns - cur->begin_ns;
      ++*steps;
    }
    const std::int64_t frontier = cur->is_wait ? cur->end_ns : cur->begin_ns;
    const PathSpan* next = nullptr;
    if (cur->is_wait) {
      // The wait ended when some task elsewhere completed; walk to the
      // latest completion not after the wait's end. A releaser may end at
      // exactly the wait's end (virtual-time traces tie exactly), so only
      // require its begin to precede the wait's end — that keeps the
      // frontier strictly decreasing across every wait crossing.
      next = latest_task_before(frontier);
      while (next &&
             !(next->end_ns <= frontier && next->begin_ns < frontier)) {
        next = next == all_tasks.data() ? nullptr : next - 1;
      }
    } else {
      next = pred_on_track(cur->track, frontier);
    }
    if (next && next->end_ns > frontier) next = nullptr;  // overlap guard
    cur = next;
  }
}

}  // namespace

Analysis analyze(const Timeline& timeline, const AnalyzeOptions& options) {
  Analysis a;
  if (!timeline.ok) {
    a.error = timeline.error.empty() ? "timeline not loaded" : timeline.error;
    return a;
  }
  if (timeline.total_spans() == 0) {
    a.error = "timeline holds no spans";
    return a;
  }
  a.ok = true;
  if (timeline.lossy()) {
    a.warnings.push_back(
        "lossy journal: " + std::to_string(timeline.total_dropped()) +
        " spans were dropped by ring overflow; busy/wait totals and the "
        "critical path under-count the dropped region");
  }

  // Pass 1: trace extent and per-track aggregation.
  a.t0_ns = INT64_MAX;
  a.t1_ns = INT64_MIN;
  std::set<std::pair<int, int>> picture_ids;  // (gop, picture)
  std::set<int> gop_ids;
  a.tracks.reserve(timeline.tracks.size());
  for (const TimelineTrack& t : timeline.tracks) {
    TrackAnalysis ta;
    ta.name = t.name;
    ta.is_worker = !is_process_track(t.name);
    ta.spans = t.spans.size();
    ta.dropped = t.dropped;
    ta.first_ns = INT64_MAX;
    ta.last_ns = INT64_MIN;
    std::vector<std::pair<std::int64_t, std::int64_t>> busy_iv;
    for (const Span& s : t.spans) {
      ta.first_ns = std::min(ta.first_ns, s.begin_ns);
      ta.last_ns = std::max(ta.last_ns, s.end_ns);
      const std::int64_t dur = s.end_ns - s.begin_ns;
      if (span_kind_is_wait(s.kind)) {
        switch (s.kind) {
          case SpanKind::kQueueWait:
            ta.wait.queue_ns += dur;
            break;
          case SpanKind::kBarrierWait:
            ta.wait.barrier_ns += dur;
            break;
          case SpanKind::kBackpressure:
            ta.wait.backpressure_ns += dur;
            break;
          default:
            ta.wait.unclassified_ns += dur;
            break;
        }
      } else if (is_task_span(s)) {
        ++ta.tasks;
        busy_iv.emplace_back(s.begin_ns, s.end_ns);
      }
      if (s.gop >= 0) gop_ids.insert(s.gop);
      if (s.picture >= 0) picture_ids.emplace(s.gop, s.picture);
    }
    if (ta.spans == 0) {
      ta.first_ns = 0;
      ta.last_ns = 0;
    }
    ta.busy_ns = interval_union_ns(busy_iv);
    a.t0_ns = std::min(a.t0_ns, ta.spans ? ta.first_ns : a.t0_ns);
    a.t1_ns = std::max(a.t1_ns, ta.spans ? ta.last_ns : a.t1_ns);
    a.tracks.push_back(std::move(ta));
  }
  if (a.t0_ns > a.t1_ns) {
    a.t0_ns = 0;
    a.t1_ns = 0;
  }
  a.makespan_ns = a.t1_ns - a.t0_ns;
  a.pictures = static_cast<int>(picture_ids.size());
  a.gops = static_cast<int>(gop_ids.size());

  // Worker-track totals + the shared load summary. Idle is the makespan
  // remainder, same definition as parallel::derive_idle.
  std::vector<std::int64_t> busy, sync, idle;
  std::vector<std::uint64_t> tasks;
  for (TrackAnalysis& ta : a.tracks) {
    if (!ta.is_worker) continue;
    ++a.worker_tracks;
    const std::int64_t wait_total = ta.wait.total();
    ta.idle_ns = std::max<std::int64_t>(
        0, a.makespan_ns - ta.busy_ns - wait_total);
    a.total_busy_ns += ta.busy_ns;
    a.total_wait += ta.wait;
    a.total_idle_ns += ta.idle_ns;
    a.tasks += ta.tasks;
    busy.push_back(ta.busy_ns);
    sync.push_back(wait_total);
    idle.push_back(ta.idle_ns);
    tasks.push_back(ta.tasks);
  }
  a.load = parallel::summarize_load(busy, sync, idle, tasks);
  a.speedup_ideal = a.worker_tracks;
  a.speedup_actual =
      a.makespan_ns > 0
          ? static_cast<double>(a.total_busy_ns) /
                static_cast<double>(a.makespan_ns)
          : 0.0;

  // Critical path over worker tracks plus the scan (input stage) track, so
  // the serial front-end contributes path time when it gates the workers.
  std::vector<std::vector<PathSpan>> by_track(timeline.tracks.size());
  std::vector<PathSpan> all_tasks;
  std::vector<PathSpan> worker_tasks;  // utilization counts workers only
  for (std::size_t i = 0; i < timeline.tracks.size(); ++i) {
    const bool is_input = timeline.tracks[i].name == "scan";
    if (!a.tracks[i].is_worker && !is_input) continue;
    for (const Span& s : timeline.tracks[i].spans) {
      if (s.end_ns - s.begin_ns < options.min_span_ns) continue;
      const bool wait = span_kind_is_wait(s.kind);
      if (!wait && !is_task_span(s)) continue;  // skip nested pictures
      PathSpan p;
      p.begin_ns = s.begin_ns;
      p.end_ns = s.end_ns;
      p.track = static_cast<int>(i);
      p.is_wait = wait;
      p.is_input = is_input;
      by_track[i].push_back(p);
      if (!wait) {
        all_tasks.push_back(p);
        if (!is_input) worker_tasks.push_back(p);
      }
    }
    std::sort(by_track[i].begin(), by_track[i].end(),
              [](const PathSpan& x, const PathSpan& y) {
                return x.end_ns < y.end_ns;
              });
  }
  critical_path(by_track, all_tasks, &a.critical_busy_ns, &a.critical_spans,
                &a.critical_input_ns);
  a.parallelism = a.critical_busy_ns > 0
                      ? static_cast<double>(a.total_busy_ns) /
                            static_cast<double>(a.critical_busy_ns)
                      : 0.0;

  // Graham-bound what-if table: T(N) = max(T1/N, critical busy).
  std::vector<int> counts = options.what_if_workers;
  if (counts.empty()) counts = {1, 2, 4, 8, 12, 14, 16};
  for (int n : counts) {
    if (n <= 0) continue;
    WhatIf w;
    w.workers = n;
    const std::int64_t even = a.total_busy_ns / n;
    w.projected_ns = std::max(even, a.critical_busy_ns);
    w.speedup = w.projected_ns > 0
                    ? static_cast<double>(a.total_busy_ns) /
                          static_cast<double>(w.projected_ns)
                    : 0.0;
    a.what_if.push_back(w);
  }

  // Utilization timeline: mean busy workers per bucket, via overlap of each
  // busy task span with the bucket window.
  if (options.utilization_buckets > 0 && a.makespan_ns > 0) {
    const int nb = options.utilization_buckets;
    std::vector<double> overlap(static_cast<std::size_t>(nb), 0.0);
    const double width =
        static_cast<double>(a.makespan_ns) / static_cast<double>(nb);
    for (const PathSpan& s : worker_tasks) {
      const std::int64_t b = s.begin_ns - a.t0_ns;
      const std::int64_t e = s.end_ns - a.t0_ns;
      int first = static_cast<int>(static_cast<double>(b) / width);
      int last = static_cast<int>(static_cast<double>(e) / width);
      first = std::clamp(first, 0, nb - 1);
      last = std::clamp(last, 0, nb - 1);
      for (int k = first; k <= last; ++k) {
        const double lo = std::max<double>(static_cast<double>(b), k * width);
        const double hi =
            std::min<double>(static_cast<double>(e), (k + 1) * width);
        if (hi > lo) overlap[static_cast<std::size_t>(k)] += hi - lo;
      }
    }
    a.utilization.reserve(static_cast<std::size_t>(nb));
    for (int k = 0; k < nb; ++k) {
      UtilSample u;
      u.t_ns = static_cast<std::int64_t>(k * width);
      u.busy_workers = overlap[static_cast<std::size_t>(k)] / width;
      a.utilization.push_back(u);
    }
  }
  return a;
}

namespace {

double ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

double frac(std::int64_t part, std::int64_t whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                   : 0.0;
}

}  // namespace

void write_analysis_text(std::ostream& os, const Analysis& a) {
  char buf[256];
  if (!a.ok) {
    os << "analysis failed: " << a.error << "\n";
    return;
  }
  for (const std::string& w : a.warnings) os << "WARNING: " << w << "\n";
  std::snprintf(buf, sizeof buf,
                "trace: %d tracks (%d workers), %llu task spans, "
                "%d pictures, %d GOPs, makespan %.3f ms\n",
                static_cast<int>(a.tracks.size()), a.worker_tracks,
                static_cast<unsigned long long>(a.tasks), a.pictures, a.gops,
                ms(a.makespan_ns));
  os << buf;

  os << "\nper-track timeline:\n";
  std::snprintf(buf, sizeof buf, "  %-12s %10s %10s %10s %10s %10s %8s\n",
                "track", "busy ms", "queue ms", "barrier ms", "backpr ms",
                "idle ms", "tasks");
  os << buf;
  for (const TrackAnalysis& t : a.tracks) {
    std::snprintf(buf, sizeof buf,
                  "  %-12s %10.3f %10.3f %10.3f %10.3f %10.3f %8llu%s\n",
                  t.name.c_str(), ms(t.busy_ns), ms(t.wait.queue_ns),
                  ms(t.wait.barrier_ns), ms(t.wait.backpressure_ns),
                  ms(t.idle_ns), static_cast<unsigned long long>(t.tasks),
                  t.dropped ? "  [lossy]" : "");
    os << buf;
  }

  const std::int64_t wait_total = a.total_wait.total();
  os << "\nblocked-time decomposition (worker tracks):\n";
  std::snprintf(buf, sizeof buf,
                "  queue-empty %.3f ms (%.1f%%), barrier %.3f ms (%.1f%%), "
                "backpressure %.3f ms (%.1f%%), unclassified %.3f ms "
                "(%.1f%%)\n",
                ms(a.total_wait.queue_ns),
                100 * frac(a.total_wait.queue_ns, wait_total),
                ms(a.total_wait.barrier_ns),
                100 * frac(a.total_wait.barrier_ns, wait_total),
                ms(a.total_wait.backpressure_ns),
                100 * frac(a.total_wait.backpressure_ns, wait_total),
                ms(a.total_wait.unclassified_ns),
                100 * frac(a.total_wait.unclassified_ns, wait_total));
  os << buf;

  std::snprintf(buf, sizeof buf,
                "\nload summary: imbalance %.3f, sync ratio %.4f (Fig. 12), "
                "utilization %.4f\n",
                a.load.imbalance, a.load.sync_ratio, a.load.utilization);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "speedup: actual %.2f vs ideal %.0f (Fig. 7 pair); "
                "critical path %.3f ms over %zu spans, avg parallelism "
                "%.2f\n",
                a.speedup_actual, a.speedup_ideal, ms(a.critical_busy_ns),
                a.critical_spans, a.parallelism);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "input stage (scan) on critical path: %.3f ms (%.1f%% of "
                "path)\n",
                ms(a.critical_input_ns),
                100 * frac(a.critical_input_ns, a.critical_busy_ns));
  os << buf;

  os << "\nwhat-if (Graham bound, T(N) = max(T1/N, critical path)):\n";
  for (const WhatIf& w : a.what_if) {
    std::snprintf(buf, sizeof buf,
                  "  N=%-3d projected %10.3f ms  speedup %6.2f\n", w.workers,
                  ms(w.projected_ns), w.speedup);
    os << buf;
  }
}

void write_analysis_json(std::ostream& os, const Analysis& a) {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("pmp2-analysis/1");
  w.key("ok").value(a.ok);
  if (!a.ok) {
    w.key("error").value(a.error);
    w.end_object();
    os << "\n";
    return;
  }
  w.key("warnings").begin_array();
  for (const std::string& s : a.warnings) w.value(s);
  w.end_array();
  w.key("makespan_ns").value(a.makespan_ns);
  w.key("worker_tracks").value(a.worker_tracks);
  w.key("pictures").value(a.pictures);
  w.key("gops").value(a.gops);
  w.key("tasks").value(a.tasks);
  w.key("total_busy_ns").value(a.total_busy_ns);
  w.key("total_idle_ns").value(a.total_idle_ns);
  w.key("wait").begin_object();
  w.key("queue_ns").value(a.total_wait.queue_ns);
  w.key("barrier_ns").value(a.total_wait.barrier_ns);
  w.key("backpressure_ns").value(a.total_wait.backpressure_ns);
  w.key("unclassified_ns").value(a.total_wait.unclassified_ns);
  w.end_object();
  w.key("load").begin_object();
  w.key("imbalance").value(a.load.imbalance);
  w.key("sync_ratio").value(a.load.sync_ratio);
  w.key("utilization").value(a.load.utilization);
  w.key("min_busy_ns").value(a.load.min_busy_ns);
  w.key("max_busy_ns").value(a.load.max_busy_ns);
  w.key("avg_busy_ns").value(a.load.avg_busy_ns);
  w.end_object();
  w.key("speedup_actual").value(a.speedup_actual);
  w.key("speedup_ideal").value(a.speedup_ideal);
  w.key("critical_busy_ns").value(a.critical_busy_ns);
  w.key("critical_spans").value(static_cast<std::uint64_t>(a.critical_spans));
  w.key("critical_input_ns").value(a.critical_input_ns);
  w.key("parallelism").value(a.parallelism);
  w.key("tracks").begin_array();
  for (const TrackAnalysis& t : a.tracks) {
    w.begin_object();
    w.key("name").value(t.name);
    w.key("worker").value(t.is_worker);
    w.key("busy_ns").value(t.busy_ns);
    w.key("queue_ns").value(t.wait.queue_ns);
    w.key("barrier_ns").value(t.wait.barrier_ns);
    w.key("backpressure_ns").value(t.wait.backpressure_ns);
    w.key("unclassified_ns").value(t.wait.unclassified_ns);
    w.key("idle_ns").value(t.idle_ns);
    w.key("tasks").value(static_cast<std::uint64_t>(t.tasks));
    w.key("dropped").value(t.dropped);
    w.end_object();
  }
  w.end_array();
  w.key("what_if").begin_array();
  for (const WhatIf& wi : a.what_if) {
    w.begin_object();
    w.key("workers").value(wi.workers);
    w.key("projected_ns").value(wi.projected_ns);
    w.key("speedup").value(wi.speedup);
    w.end_object();
  }
  w.end_array();
  w.key("utilization").begin_array();
  for (const UtilSample& u : a.utilization) {
    w.begin_object();
    w.key("t_ns").value(u.t_ns);
    w.key("busy_workers").value(u.busy_workers);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace pmp2::obs::analysis
