#include "obs/analysis/timeline.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "obs/json_parse.h"

namespace pmp2::obs::analysis {

std::uint64_t Timeline::total_spans() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks) n += t.spans.size();
  return n;
}

std::uint64_t Timeline::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks) n += t.dropped;
  return n;
}

Timeline from_tracer(const Tracer& tracer) {
  Timeline tl;
  tl.ok = true;
  tl.tracks.resize(static_cast<std::size_t>(tracer.tracks()));
  for (int i = 0; i < tracer.tracks(); ++i) {
    const TraceTrack& t = tracer.track(i);
    TimelineTrack& out = tl.tracks[static_cast<std::size_t>(i)];
    out.name = t.name().empty() ? "worker " + std::to_string(i) : t.name();
    out.emitted = t.emitted();
    out.dropped = t.dropped();
    out.spans = t.spans();
  }
  return tl;
}

namespace {

Timeline fail(std::string message) {
  Timeline tl;
  tl.error = std::move(message);
  return tl;
}

template <typename T>
bool get_raw(std::istream& is, T* value) {
  is.read(reinterpret_cast<char*>(value), sizeof *value);
  return static_cast<bool>(is);
}

// Sanity bounds: a corrupt or truncated journal should produce an error,
// not a multi-gigabyte allocation.
constexpr std::uint32_t kMaxTracks = 1 << 16;
constexpr std::uint32_t kMaxNameLen = 1 << 16;
constexpr std::uint64_t kMaxSpansPerTrack = std::uint64_t{1} << 28;

}  // namespace

Timeline load_journal(std::istream& is) {
  char magic[sizeof kJournalMagic];
  if (!is.read(magic, sizeof magic) ||
      std::memcmp(magic, kJournalMagic, sizeof magic) != 0) {
    return fail("not a PMP2JRNL journal (bad magic)");
  }
  std::uint32_t version = 0;
  std::uint32_t track_count = 0;
  if (!get_raw(is, &version)) return fail("truncated journal header");
  if (version != kJournalVersion) {
    return fail("unsupported journal version " + std::to_string(version));
  }
  if (!get_raw(is, &track_count)) return fail("truncated journal header");
  if (track_count > kMaxTracks) {
    return fail("implausible track count " + std::to_string(track_count));
  }

  Timeline tl;
  tl.tracks.resize(track_count);
  for (std::uint32_t i = 0; i < track_count; ++i) {
    TimelineTrack& t = tl.tracks[i];
    std::uint32_t name_len = 0;
    if (!get_raw(is, &name_len) || name_len > kMaxNameLen) {
      return fail("bad track name in journal (track " + std::to_string(i) +
                  ")");
    }
    t.name.resize(name_len);
    if (name_len > 0 &&
        !is.read(t.name.data(), static_cast<std::streamsize>(name_len))) {
      return fail("truncated track name (track " + std::to_string(i) + ")");
    }
    // Same fallback as from_tracer / the Chrome writer: unnamed tracks are
    // workers, so all three timeline sources agree on track naming.
    if (t.name.empty()) t.name = "worker " + std::to_string(i);
    std::uint64_t span_count = 0;
    if (!get_raw(is, &t.emitted) || !get_raw(is, &t.dropped) ||
        !get_raw(is, &span_count) || span_count > kMaxSpansPerTrack) {
      return fail("truncated track header (track " + std::to_string(i) + ")");
    }
    t.spans.resize(static_cast<std::size_t>(span_count));
    for (Span& s : t.spans) {
      std::uint8_t kind = 0;
      if (!get_raw(is, &s.begin_ns) || !get_raw(is, &s.end_ns) ||
          !get_raw(is, &s.picture) || !get_raw(is, &s.slice) ||
          !get_raw(is, &s.gop) || !get_raw(is, &kind)) {
        return fail("truncated span data (track " + std::to_string(i) + ")");
      }
      s.kind = static_cast<SpanKind>(kind);
    }
  }
  tl.ok = true;
  return tl;
}

Timeline load_journal_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  return load_journal(in);
}

namespace {

SpanKind kind_from_category(const std::string& cat) {
  if (cat == "scan") return SpanKind::kScan;
  if (cat == "gop") return SpanKind::kGopTask;
  if (cat == "slice") return SpanKind::kSliceTask;
  if (cat == "picture") return SpanKind::kPicture;
  if (cat == "wait") return SpanKind::kSyncWait;
  if (cat == "display") return SpanKind::kDisplay;
  if (cat == "conceal") return SpanKind::kConceal;
  if (cat == "wait.queue") return SpanKind::kQueueWait;
  if (cat == "wait.barrier") return SpanKind::kBarrierWait;
  if (cat == "wait.backpressure") return SpanKind::kBackpressure;
  return SpanKind::kSyncWait;
}

/// Chrome "ts"/"dur" are microseconds with three fixed decimals; llround
/// recovers the original integer nanoseconds exactly.
std::int64_t us_to_ns(double us) { return std::llround(us * 1000.0); }

}  // namespace

Timeline load_chrome_trace(std::string_view text) {
  JsonValue root;
  std::string error;
  if (!json_parse(text, root, &error)) {
    return fail("chrome trace parse error: " + error);
  }
  const JsonValue* events = root.find("traceEvents");
  if (!events || !events->is_array()) {
    return fail("chrome trace has no traceEvents array");
  }

  Timeline tl;
  std::unordered_map<std::int64_t, std::size_t> tid_to_track;
  auto track_for = [&](std::int64_t tid) -> TimelineTrack& {
    auto [it, inserted] = tid_to_track.emplace(tid, tl.tracks.size());
    if (inserted) {
      tl.tracks.emplace_back();
      tl.tracks.back().name = "worker " + std::to_string(tid);
    }
    return tl.tracks[it->second];
  };

  for (const JsonValue& ev : events->items) {
    if (!ev.is_object()) continue;
    const std::string ph = ev.get_string("ph");
    const std::int64_t tid = ev.get_int("tid");
    if (ph == "M") {
      if (ev.get_string("name") != "thread_name") continue;
      TimelineTrack& t = track_for(tid);
      if (const JsonValue* args = ev.find("args")) {
        t.name = args->get_string("name", t.name);
        t.dropped = static_cast<std::uint64_t>(args->get_int("dropped"));
      }
      continue;
    }
    if (ph != "X") continue;
    TimelineTrack& t = track_for(tid);
    Span s;
    s.begin_ns = us_to_ns(ev.get_double("ts"));
    s.end_ns = s.begin_ns + us_to_ns(ev.get_double("dur"));
    s.kind = kind_from_category(ev.get_string("cat"));
    if (const JsonValue* args = ev.find("args")) {
      s.picture = static_cast<std::int32_t>(args->get_int("picture", -1));
      s.slice = static_cast<std::int32_t>(args->get_int("slice", -1));
      s.gop = static_cast<std::int32_t>(args->get_int("gop", -1));
    }
    t.spans.push_back(s);
  }
  for (TimelineTrack& t : tl.tracks) {
    t.emitted = t.spans.size() + t.dropped;
  }
  tl.ok = true;
  return tl;
}

Timeline load_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return load_chrome_trace(buf.str());
}

Timeline load_timeline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail("cannot open " + path);
  const int first = in.peek();
  if (first == EOF) return fail("empty trace file " + path);
  if (first == '{' || first == '[') {
    std::ostringstream buf;
    buf << in.rdbuf();
    return load_chrome_trace(buf.str());
  }
  return load_journal(in);
}

}  // namespace pmp2::obs::analysis
