#include "obs/analysis/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "obs/report.h"

namespace pmp2::obs::analysis {

namespace {

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

bool is_metric_field(const std::string& name) {
  // Measurement-unit suffixes first (cheap and unambiguous).
  if (ends_with(name, "_ns") || ends_with(name, "_us") ||
      ends_with(name, "_ms") || ends_with(name, "_s") ||
      ends_with(name, "_bytes") || ends_with(name, "_mb")) {
    return true;
  }
  return contains(name, "per_second") || contains(name, "speedup") ||
         contains(name, "ratio") || contains(name, "utilization") ||
         contains(name, "imbalance") || contains(name, "fps") ||
         contains(name, "pps") || contains(name, "mbps") ||
         contains(name, "rate") || contains(name, "percent") ||
         contains(name, "stall") || contains(name, "miss") ||
         contains(name, "efficiency") || contains(name, "overhead") ||
         contains(name, "per_op") || contains(name, "ipc") ||
         contains(name, "cycles") || contains(name, "instructions");
}

bool metric_higher_is_better(const std::string& name) {
  // Miss/stall figures are lower-better even when the name also says
  // "rate" (read_miss_rate, stall_frac): check them before the
  // higher-better substrings.
  if (contains(name, "miss") || contains(name, "stall")) return false;
  return contains(name, "per_second") || contains(name, "speedup") ||
         contains(name, "utilization") || contains(name, "fps") ||
         contains(name, "pps") || contains(name, "mbps") ||
         contains(name, "rate") || contains(name, "efficiency") ||
         contains(name, "throughput") || contains(name, "ipc");
}

bool is_counter_metric(const std::string& name) {
  return contains(name, "cycles") || contains(name, "instructions") ||
         contains(name, "ipc") || contains(name, "cache_refs") ||
         contains(name, "cache_misses") || contains(name, "stalled");
}

namespace {

/// Identity key of a row: every non-metric field, in document order.
std::string row_key(const JsonValue& row) {
  std::string key;
  for (const auto& [name, value] : row.members) {
    const bool metric = value.is_number() && is_metric_field(name);
    if (metric) continue;
    if (!key.empty()) key += '|';
    key += name;
    key += '=';
    switch (value.kind) {
      case JsonValue::Kind::kString:
        key += value.string;
        break;
      case JsonValue::Kind::kBool:
        key += value.boolean ? "true" : "false";
        break;
      case JsonValue::Kind::kNumber: {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.12g", value.number);
        key += buf;
        break;
      }
      default:
        key += "?";
        break;
    }
  }
  return key;
}

void compare_rows(const std::string& tool, const JsonValue& base_row,
                  const JsonValue& cand_row, const std::string& key,
                  const CompareOptions& options, bool suppress_counters,
                  CompareResult& out) {
  ++out.rows;
  for (const auto& [name, base_val] : base_row.members) {
    if (!base_val.is_number() || !is_metric_field(name)) continue;
    if (suppress_counters && is_counter_metric(name)) continue;
    const JsonValue* cand_val = cand_row.find(name);
    if (!cand_val || !cand_val->is_number()) {
      out.coverage_loss.push_back(tool + " [" + key + "]: metric '" + name +
                                  "' missing from candidate");
      continue;
    }
    ++out.metrics;
    MetricDiff d;
    d.tool = tool;
    d.row_key = key;
    d.metric = name;
    d.baseline = base_val.number;
    d.candidate = cand_val->number;
    d.higher_better = metric_higher_is_better(name);
    const double denom = std::abs(d.baseline);
    if (denom < 1e-12) {
      // Zero baseline: any nonzero candidate in the worse direction is a
      // regression only if it exceeds tolerance in absolute terms too;
      // skip — relative tolerance is meaningless here.
      continue;
    }
    d.rel_delta = (d.candidate - d.baseline) / denom;
    const double worse = d.higher_better ? -d.rel_delta : d.rel_delta;
    const double tol = options.tolerance_for(name);
    if (worse > tol) {
      d.regression = !options.advisory_metrics;
      (options.advisory_metrics ? out.advisories : out.regressions)
          .push_back(d);
    } else if (options.report_improvements && -worse > tol) {
      out.improvements.push_back(d);
    }
  }
}

/// meta.kernels_backend, or "" when the document predates the field.
std::string kernels_backend_of(const JsonValue& doc) {
  const JsonValue* meta = doc.find("meta");
  if (!meta || !meta->is_object()) return "";
  return meta->get_string("kernels_backend", "");
}

/// meta.counter_source, or "" when the document predates the field.
std::string counter_source_of(const JsonValue& doc) {
  const JsonValue* meta = doc.find("meta");
  if (!meta || !meta->is_object()) return "";
  return meta->get_string("counter_source", "");
}

void compare_one_report(const JsonValue& base, const JsonValue& cand,
                        const CompareOptions& options, CompareResult& out) {
  const std::string tool = base.get_string("tool", "?");
  ++out.reports;
  // A backend change is an identity mismatch, not a metric regression: the
  // two runs measured different kernels, so their metric deltas are
  // meaningless and suppressed. Only enforced when both documents carry
  // the meta field; pre-dispatch baselines still compare normally.
  const std::string base_kern = kernels_backend_of(base);
  const std::string cand_kern = kernels_backend_of(cand);
  if (!base_kern.empty() && !cand_kern.empty() && base_kern != cand_kern) {
    out.identity_mismatch.push_back(
        tool + ": kernels_backend '" + base_kern + "' (baseline) vs '" +
        cand_kern + "' (candidate); rerun with matching PMP2_KERNELS or "
        "regenerate the baseline");
    return;
  }
  // A counter-capability change (perf host vs software-fallback host) is
  // narrower than a backend change: the time-based metrics still compare
  // fine, only the hardware-counter columns are meaningless across it.
  // Suppress those columns with a note instead of failing the report.
  // Only when both documents carry the field — committed baselines without
  // counter meta keep comparing everything.
  const std::string base_src = counter_source_of(base);
  const std::string cand_src = counter_source_of(cand);
  const bool suppress_counters =
      !base_src.empty() && !cand_src.empty() && base_src != cand_src;
  if (suppress_counters) {
    out.notes.push_back(
        tool + ": counter_source '" + base_src + "' (baseline) vs '" +
        cand_src + "' (candidate); hardware-counter columns not compared");
  }
  const JsonValue* base_rows = base.find("rows");
  const JsonValue* cand_rows = cand.find("rows");
  if (!base_rows || !base_rows->is_array() || !cand_rows ||
      !cand_rows->is_array()) {
    out.notes.push_back(tool + ": missing rows array");
    return;
  }
  // Index candidate rows by identity key; duplicate keys keep the first.
  std::map<std::string, const JsonValue*> cand_by_key;
  for (const JsonValue& row : cand_rows->items) {
    if (row.is_object()) cand_by_key.emplace(row_key(row), &row);
  }
  for (const JsonValue& row : base_rows->items) {
    if (!row.is_object()) continue;
    const std::string key = row_key(row);
    auto it = cand_by_key.find(key);
    if (it == cand_by_key.end()) {
      out.coverage_loss.push_back(tool + ": baseline row [" + key +
                                  "] missing from candidate");
      continue;
    }
    compare_rows(tool, row, *it->second, key, options, suppress_counters,
                 out);
  }
}

}  // namespace

CompareResult compare_reports(const JsonValue& baseline,
                              const JsonValue& candidate,
                              const CompareOptions& options) {
  CompareResult out;
  const std::string base_schema = baseline.get_string("schema");
  const std::string cand_schema = candidate.get_string("schema");
  if (base_schema.empty() || base_schema != cand_schema) {
    out.error = "schema mismatch: baseline '" + base_schema +
                "' vs candidate '" + cand_schema + "'";
    return out;
  }
  out.ok = true;
  if (base_schema == RunReport::kSchema) {
    compare_one_report(baseline, candidate, options, out);
    return out;
  }
  if (base_schema != kSuiteSchema) {
    out.ok = false;
    out.error = "unknown schema '" + base_schema + "'";
    return out;
  }
  const JsonValue* base_reports = baseline.find("reports");
  const JsonValue* cand_reports = candidate.find("reports");
  if (!base_reports || !base_reports->is_array() || !cand_reports ||
      !cand_reports->is_array()) {
    out.ok = false;
    out.error = "suite document lacks a reports array";
    return out;
  }
  std::map<std::string, const JsonValue*> cand_by_tool;
  for (const JsonValue& r : cand_reports->items) {
    if (r.is_object()) cand_by_tool.emplace(r.get_string("tool"), &r);
  }
  for (const JsonValue& r : base_reports->items) {
    if (!r.is_object()) continue;
    const std::string tool = r.get_string("tool", "?");
    auto it = cand_by_tool.find(tool);
    if (it == cand_by_tool.end()) {
      out.coverage_loss.push_back("report '" + tool +
                                  "' missing from candidate suite");
      continue;
    }
    compare_one_report(r, *it->second, options, out);
  }
  return out;
}

CompareResult compare_report_files(const std::string& baseline_path,
                                   const std::string& candidate_path,
                                   const CompareOptions& options) {
  CompareResult out;
  auto load = [&](const std::string& path, JsonValue& doc) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      out.error = "cannot open " + path;
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (!json_parse(buf.str(), doc, &error)) {
      out.error = path + ": " + error;
      return false;
    }
    return true;
  };
  JsonValue base, cand;
  if (!load(baseline_path, base) || !load(candidate_path, cand)) return out;
  return compare_reports(base, cand, options);
}

void write_compare_text(std::ostream& os, const CompareResult& r) {
  char buf[512];
  if (!r.ok) {
    os << "compare failed: " << r.error << "\n";
    return;
  }
  std::snprintf(buf, sizeof buf,
                "compared %d report(s), %d row(s), %d metric value(s)\n",
                r.reports, r.rows, r.metrics);
  os << buf;
  for (const std::string& n : r.notes) os << "note: " << n << "\n";
  for (const std::string& m : r.identity_mismatch) {
    os << "IDENTITY MISMATCH: " << m << "\n";
  }
  for (const std::string& c : r.coverage_loss) os << "LOST: " << c << "\n";
  for (const MetricDiff& d : r.regressions) {
    std::snprintf(buf, sizeof buf,
                  "REGRESSION %s [%s] %s: %.6g -> %.6g (%+.1f%%, %s better)\n",
                  d.tool.c_str(), d.row_key.c_str(), d.metric.c_str(),
                  d.baseline, d.candidate, 100 * d.rel_delta,
                  d.higher_better ? "higher" : "lower");
    os << buf;
  }
  for (const MetricDiff& d : r.advisories) {
    std::snprintf(buf, sizeof buf,
                  "advisory %s [%s] %s: %.6g -> %.6g (%+.1f%%, %s better)\n",
                  d.tool.c_str(), d.row_key.c_str(), d.metric.c_str(),
                  d.baseline, d.candidate, 100 * d.rel_delta,
                  d.higher_better ? "higher" : "lower");
    os << buf;
  }
  for (const MetricDiff& d : r.improvements) {
    std::snprintf(buf, sizeof buf,
                  "improved %s [%s] %s: %.6g -> %.6g (%+.1f%%)\n",
                  d.tool.c_str(), d.row_key.c_str(), d.metric.c_str(),
                  d.baseline, d.candidate, 100 * d.rel_delta);
    os << buf;
  }
  os << (r.passed() ? "bench check PASSED\n" : "bench check FAILED\n");
}

bool write_suite(std::ostream& os, const std::vector<SuiteEntry>& entries,
                 std::string* error) {
  // Validate everything before writing anything.
  std::vector<std::string> trimmed;
  trimmed.reserve(entries.size());
  for (const SuiteEntry& e : entries) {
    JsonValue doc;
    std::string parse_error;
    if (!json_parse(e.raw, doc, &parse_error)) {
      if (error) *error = e.source + ": " + parse_error;
      return false;
    }
    if (doc.get_string("schema") != RunReport::kSchema) {
      if (error) {
        *error = e.source + ": schema is '" + doc.get_string("schema") +
                 "', expected '" + RunReport::kSchema + "'";
      }
      return false;
    }
    std::string t = e.raw;
    while (!t.empty() && (t.back() == '\n' || t.back() == '\r' ||
                          t.back() == ' ' || t.back() == '\t')) {
      t.pop_back();
    }
    trimmed.push_back(std::move(t));
  }
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kSuiteSchema);
  w.key("sources").begin_array();
  for (const SuiteEntry& e : entries) w.value(e.source);
  w.end_array();
  w.key("reports").begin_array();
  for (const std::string& t : trimmed) w.value_raw(t);
  w.end_array();
  w.end_object();
  os << "\n";
  return true;
}

}  // namespace pmp2::obs::analysis
