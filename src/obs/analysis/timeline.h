// Timeline: the analyzer's in-memory view of one recorded run — per-track
// span lists plus drop accounting — with loaders for both on-disk trace
// formats the Tracer writes:
//
//   * the compact binary journal (magic "PMP2JRNL"), lossless and cheap;
//   * the Chrome trace_event JSON export (sniffed by its leading '{'),
//     so traces captured for Perfetto can be analyzed without re-running.
//
// Both loaders produce the same Timeline; `load_timeline` sniffs the
// format from the first byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace pmp2::obs::analysis {

struct TimelineTrack {
  std::string name;
  std::uint64_t emitted = 0;  // spans ever emitted (includes overwritten)
  std::uint64_t dropped = 0;  // spans lost to ring overflow
  std::vector<Span> spans;    // retained spans, oldest first
};

struct Timeline {
  bool ok = false;
  std::string error;  // set when !ok
  std::vector<TimelineTrack> tracks;

  [[nodiscard]] std::uint64_t total_spans() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  /// True when any track overflowed its ring: analyses over this timeline
  /// under-count whatever the dropped spans held.
  [[nodiscard]] bool lossy() const { return total_dropped() > 0; }
};

/// Snapshot of a live tracer (no serialization round-trip).
[[nodiscard]] Timeline from_tracer(const Tracer& tracer);

/// Binary journal (Tracer::write_journal) loaders.
[[nodiscard]] Timeline load_journal(std::istream& is);
[[nodiscard]] Timeline load_journal_file(const std::string& path);

/// Chrome trace_event JSON (Tracer::write_chrome_trace) loaders. Only "X"
/// complete events are reconstructed (metadata events carry names/drops);
/// span kinds come from the "cat" field, ids from "args".
[[nodiscard]] Timeline load_chrome_trace(std::string_view text);
[[nodiscard]] Timeline load_chrome_trace_file(const std::string& path);

/// Sniffs the format ('{' = Chrome JSON, "PMP2JRNL" = journal) and loads.
[[nodiscard]] Timeline load_timeline(const std::string& path);

}  // namespace pmp2::obs::analysis
