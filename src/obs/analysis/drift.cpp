#include "obs/analysis/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "obs/json.h"

namespace pmp2::obs::analysis {

namespace {

/// Flattened decode-order picture list: slice-task spans carry the global
/// decode-order picture index (both the real slice decoder and the slice
/// sim emit it that way), not a (gop, picture-in-gop) pair.
struct FlatProfile {
  std::vector<const sched::PictureCost*> pictures;
  std::vector<int> gop_of;  // global picture index -> gop ordinal

  explicit FlatProfile(const sched::StreamProfile& profile) {
    for (std::size_t g = 0; g < profile.gops.size(); ++g) {
      for (const auto& p : profile.gops[g].pictures) {
        pictures.push_back(&p);
        gop_of.push_back(static_cast<int>(g));
      }
    }
  }

  /// Model value for one slice task (work units, or measured profile ns);
  /// 0 when the ids fall outside the profile (e.g. a concealed slice the
  /// profiler never saw).
  [[nodiscard]] double slice_model(int picture, int slice,
                                   bool measured) const {
    if (picture < 0 || picture >= static_cast<int>(pictures.size())) return 0;
    const auto& slices = pictures[static_cast<std::size_t>(picture)]->slices;
    if (slice < 0 || slice >= static_cast<int>(slices.size())) return 0;
    const auto& s = slices[static_cast<std::size_t>(slice)];
    return measured ? static_cast<double>(s.ns)
                    : static_cast<double>(s.units);
  }

  [[nodiscard]] int gop(int picture) const {
    return picture >= 0 && picture < static_cast<int>(gop_of.size())
               ? gop_of[static_cast<std::size_t>(picture)]
               : -1;
  }
};

double gop_model(const sched::StreamProfile& profile, int gop,
                 bool measured) {
  if (gop < 0 || gop >= static_cast<int>(profile.gops.size())) return 0;
  const auto& g = profile.gops[static_cast<std::size_t>(gop)];
  return measured ? static_cast<double>(g.ns())
                  : static_cast<double>(g.units());
}

}  // namespace

DriftReport detect_drift(const Timeline& timeline,
                         const sched::StreamProfile& profile,
                         const DriftOptions& options) {
  DriftReport r;
  r.tolerance = options.tolerance;
  if (!timeline.ok) {
    r.error = timeline.error.empty() ? "timeline not loaded" : timeline.error;
    return r;
  }
  if (!profile.ok) {
    r.error = "stream profile not ok";
    return r;
  }

  // Collect task spans: slices when present, whole GOP tasks otherwise.
  struct RawTask {
    int gop, picture, slice;
    std::int64_t ns;
  };
  const FlatProfile flat(profile);
  std::vector<RawTask> slice_tasks, gop_tasks;
  for (const TimelineTrack& t : timeline.tracks) {
    for (const Span& s : t.spans) {
      if (s.kind == SpanKind::kSliceTask && s.picture >= 0 && s.slice >= 0) {
        slice_tasks.push_back(
            {flat.gop(s.picture), s.picture, s.slice, s.end_ns - s.begin_ns});
      } else if (s.kind == SpanKind::kGopTask && s.gop >= 0) {
        gop_tasks.push_back({s.gop, -1, -1, s.end_ns - s.begin_ns});
      }
    }
  }
  r.slice_granularity = !slice_tasks.empty();
  const auto& raw = r.slice_granularity ? slice_tasks : gop_tasks;
  if (raw.empty()) {
    r.error = "timeline holds no slice or GOP task spans with stream ids";
    return r;
  }
  r.measured = options.measured;
  auto model_of = [&](const RawTask& t) {
    return t.slice >= 0
               ? flat.slice_model(t.picture, t.slice, options.measured)
               : gop_model(profile, t.gop, options.measured);
  };

  // Fit the one free parameter: scale = median(actual_ns / model value).
  std::vector<double> ratios;
  ratios.reserve(raw.size());
  for (const RawTask& t : raw) {
    const double model = model_of(t);
    if (model <= 0 || t.ns <= 0) continue;
    ratios.push_back(static_cast<double>(t.ns) / model);
  }
  if (ratios.empty()) {
    r.error = "no timeline task matched the profile (wrong stream?)";
    return r;
  }
  const auto mid = ratios.begin() + static_cast<std::ptrdiff_t>(
                                        ratios.size() / 2);
  std::nth_element(ratios.begin(), mid, ratios.end());
  r.scale = *mid;
  if (r.scale <= 0) {
    r.error = "degenerate fitted scale";
    return r;
  }

  // Score every matched task; aggregate per GOP.
  // Per-GOP score is duration-weighted: on tiny tasks (tens of µs) relative
  // error is mostly scheduler jitter, and an unweighted mean over a small
  // GOP lets a few such tasks flag it. Weighting by predicted cost makes
  // the score track where the model actually spends its time.
  struct GopAccum {
    int tasks = 0;
    double weight = 0.0;      // sum of predicted ns
    double werr = 0.0;        // sum of predicted ns * |rel err|
  };
  std::map<int, GopAccum> per_gop;
  std::vector<DriftTask> over;
  std::vector<double> abs_errs;
  double abs_sum = 0.0;
  for (const RawTask& t : raw) {
    const double model = model_of(t);
    const auto predicted = static_cast<std::int64_t>(model * r.scale);
    if (model <= 0 || predicted < options.min_predicted_ns) {
      ++r.skipped_tasks;
      continue;
    }
    DriftTask d;
    d.gop = t.gop;
    d.picture = t.picture;
    d.slice = t.slice;
    d.actual_ns = t.ns;
    d.predicted_ns = predicted;
    d.rel_error = static_cast<double>(t.ns - predicted) /
                  static_cast<double>(predicted);
    ++r.matched_tasks;
    const double abs_err = std::abs(d.rel_error);
    abs_errs.push_back(abs_err);
    abs_sum += abs_err;
    r.max_abs_rel_error = std::max(r.max_abs_rel_error, abs_err);
    GopAccum& acc = per_gop[t.gop];
    ++acc.tasks;
    acc.weight += static_cast<double>(predicted);
    acc.werr += static_cast<double>(predicted) * abs_err;
    if (abs_err > options.tolerance) over.push_back(d);
  }
  if (r.matched_tasks == 0) {
    r.error = "every matched task fell below min_predicted_ns";
    return r;
  }
  r.mean_abs_rel_error = abs_sum / r.matched_tasks;
  {
    auto mid = abs_errs.begin() +
               static_cast<std::ptrdiff_t>(abs_errs.size() / 2);
    std::nth_element(abs_errs.begin(), mid, abs_errs.end());
    r.median_abs_rel_error = *mid;
  }
  r.flagged_total = static_cast<int>(over.size());
  r.allowed_outliers = static_cast<int>(options.outlier_fraction *
                                        static_cast<double>(r.matched_tasks));

  std::sort(over.begin(), over.end(), [](const DriftTask& a,
                                         const DriftTask& b) {
    return std::abs(a.rel_error) > std::abs(b.rel_error);
  });
  if (over.size() > options.max_flagged) over.resize(options.max_flagged);
  r.flagged = std::move(over);

  for (const auto& [gop, acc] : per_gop) {
    GopDrift g;
    g.gop = gop;
    g.tasks = acc.tasks;
    g.mean_abs_rel_error = acc.weight > 0 ? acc.werr / acc.weight : 0.0;
    g.flagged = g.mean_abs_rel_error > options.gop_tolerance;
    r.gop_drift.push_back(g);
  }
  r.ok = true;
  return r;
}

void write_drift_text(std::ostream& os, const DriftReport& r) {
  char buf[256];
  if (!r.ok) {
    os << "drift detection failed: " << r.error << "\n";
    return;
  }
  std::snprintf(buf, sizeof buf,
                "drift: %s granularity, %s basis, %d tasks matched "
                "(%d skipped), fitted scale %.4g\n",
                r.slice_granularity ? "slice" : "GOP",
                r.measured ? "measured-ns" : "work-units", r.matched_tasks,
                r.skipped_tasks, r.scale);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  median |rel err| %.4f, mean %.4f, max %.4f, tolerance "
                "%.2f -> %d flagged tasks (%d allowed), %d flagged GOPs\n",
                r.median_abs_rel_error, r.mean_abs_rel_error,
                r.max_abs_rel_error, r.tolerance, r.flagged_total,
                r.allowed_outliers, r.flagged_gops());
  os << buf;
  for (const DriftTask& d : r.flagged) {
    std::snprintf(buf, sizeof buf,
                  "  FLAG gop %d pic %d slice %d: actual %.3f ms vs "
                  "predicted %.3f ms (%+.1f%%)\n",
                  d.gop, d.picture, d.slice,
                  static_cast<double>(d.actual_ns) / 1e6,
                  static_cast<double>(d.predicted_ns) / 1e6,
                  100 * d.rel_error);
    os << buf;
  }
  for (const GopDrift& g : r.gop_drift) {
    if (!g.flagged) continue;
    std::snprintf(buf, sizeof buf,
                  "  FLAG gop %d: mean |rel err| %.4f over %d tasks\n",
                  g.gop, g.mean_abs_rel_error, g.tasks);
    os << buf;
  }
  os << (r.passed() ? "drift check PASSED\n" : "drift check FAILED\n");
}

void write_drift_json(std::ostream& os, const DriftReport& r) {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value("pmp2-drift/1");
  w.key("ok").value(r.ok);
  if (!r.ok) {
    w.key("error").value(r.error);
    w.end_object();
    os << "\n";
    return;
  }
  w.key("granularity").value(r.slice_granularity ? "slice" : "gop");
  w.key("basis").value(r.measured ? "measured_ns" : "units");
  w.key("matched_tasks").value(r.matched_tasks);
  w.key("skipped_tasks").value(r.skipped_tasks);
  w.key("scale_ns_per_unit").value(r.scale);
  w.key("tolerance").value(r.tolerance);
  w.key("mean_abs_rel_error").value(r.mean_abs_rel_error);
  w.key("median_abs_rel_error").value(r.median_abs_rel_error);
  w.key("max_abs_rel_error").value(r.max_abs_rel_error);
  w.key("flagged_total").value(r.flagged_total);
  w.key("allowed_outliers").value(r.allowed_outliers);
  w.key("passed").value(r.passed());
  w.key("flagged").begin_array();
  for (const DriftTask& d : r.flagged) {
    w.begin_object();
    w.key("gop").value(d.gop);
    w.key("picture").value(d.picture);
    w.key("slice").value(d.slice);
    w.key("actual_ns").value(d.actual_ns);
    w.key("predicted_ns").value(d.predicted_ns);
    w.key("rel_error").value(d.rel_error);
    w.end_object();
  }
  w.end_array();
  w.key("gops").begin_array();
  for (const GopDrift& g : r.gop_drift) {
    w.begin_object();
    w.key("gop").value(g.gop);
    w.key("tasks").value(g.tasks);
    w.key("mean_abs_rel_error").value(g.mean_abs_rel_error);
    w.key("flagged").value(g.flagged);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace pmp2::obs::analysis
