// Sim-vs-real drift detector: checks that the virtual-time simulator's
// cost model (sched::StreamProfile, units x ns_per_unit) still predicts
// what the real threaded decoder spends per task.
//
// Method: take a traced real decode (slice or GOP task spans with ids) and
// the profile of the same stream. Per task, the model predicts
// units * scale nanoseconds; the single free parameter `scale` is fitted
// as the median of actual/units over all tasks, which absorbs the host's
// absolute speed (the simulator's calibration does the same via
// ns_per_unit) while leaving the *shape* of the cost model exposed. A task
// whose relative error |actual - predicted| / predicted exceeds the
// tolerance is flagged; GOPs are scored by their duration-weighted mean
// absolute error.
//
// Interpretation: small scatter is expected (cache state, scheduling);
// systematic per-slice-type or per-GOP divergence means the linear
// WorkMeter model (mpeg2/types.h) has drifted from the real kernels and
// the simulator's figures can no longer be trusted at the flagged
// granularity. docs/ANALYSIS.md documents the shipped tolerance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/analysis/timeline.h"
#include "sched/profile.h"

namespace pmp2::obs::analysis {

struct DriftTask {
  int gop = -1;
  int picture = -1;
  int slice = -1;  // -1 for GOP-granularity tasks
  std::int64_t actual_ns = 0;
  std::int64_t predicted_ns = 0;
  double rel_error = 0.0;  // signed: (actual - predicted) / predicted
};

struct GopDrift {
  int gop = -1;
  int tasks = 0;
  /// Duration-weighted (by predicted cost) mean |rel_error| over the
  /// GOP's tasks: robust to jitter on tens-of-µs tasks.
  double mean_abs_rel_error = 0.0;
  bool flagged = false;
};

struct DriftOptions {
  /// Prediction basis. false (default): the simulator's default model,
  /// units * fitted scale — checks the WorkMeter linear model itself.
  /// true: the profile's measured per-slice nanoseconds * fitted scale —
  /// checks that profiling still reproduces the real decode (the sim's
  /// measured_costs mode), independent of the units model's fit.
  bool measured = false;
  /// Per-task relative-error threshold. The default absorbs normal
  /// scheduling/cache scatter on a loaded single-core host (spans are
  /// wall-clock, so any preemption lands in some task); see
  /// docs/ANALYSIS.md for how the shipped tolerances were chosen.
  double tolerance = 0.75;
  /// Flag a GOP when its mean absolute error exceeds this (GOP means
  /// average the scheduling noise out, so the bar is lower than per-task;
  /// healthy runs on the reference container sit at 0.1-0.3 with
  /// excursions to ~0.5 on small GOPs where one preempted span moves the
  /// mean, while genuine model drift shows up well above 1).
  double gop_tolerance = 0.6;
  /// Ignore tasks predicted below this cost: relative error on
  /// sub-5µs tasks is dominated by timer and wakeup noise.
  std::int64_t min_predicted_ns = 5'000;
  /// Keep at most this many flagged tasks in the report (worst first).
  std::size_t max_flagged = 64;
  /// Fraction of tasks allowed over tolerance before the check fails: on a
  /// loaded host a handful of wall-clock spans always catch a preemption
  /// spike, and single outliers say nothing about the cost model.
  double outlier_fraction = 0.10;
};

struct DriftReport {
  bool ok = false;
  std::string error;
  bool slice_granularity = false;  // false = GOP tasks were matched
  bool measured = false;           // prediction basis used
  int matched_tasks = 0;
  int skipped_tasks = 0;  // below min_predicted_ns or not in the profile
  double scale = 0.0;     // fitted scale (median actual / model value)
  double tolerance = 0.0;
  double max_abs_rel_error = 0.0;
  double mean_abs_rel_error = 0.0;
  /// Robust to preemption spikes (which inflate mean/max on a loaded
  /// host): systematic model drift moves the median, host noise barely.
  double median_abs_rel_error = 0.0;
  int flagged_total = 0;            // tasks over tolerance (before truncation)
  int allowed_outliers = 0;         // outlier_fraction * matched_tasks
  std::vector<DriftTask> flagged;   // worst |rel_error| first (truncated)
  std::vector<GopDrift> gop_drift;  // one entry per matched GOP

  [[nodiscard]] int flagged_gops() const {
    int n = 0;
    for (const auto& g : gop_drift) n += g.flagged;
    return n;
  }
  /// Passes when no GOP exceeds its tolerance and task outliers stay
  /// within the allowed fraction.
  [[nodiscard]] bool passed() const {
    return ok && flagged_total <= allowed_outliers && flagged_gops() == 0;
  }
};

/// Diffs the timeline's task spans against the profile's cost model.
/// Prefers slice granularity (kSliceTask spans with gop/picture/slice ids);
/// falls back to GOP granularity (kGopTask spans) for coarse traces.
[[nodiscard]] DriftReport detect_drift(const Timeline& timeline,
                                       const sched::StreamProfile& profile,
                                       const DriftOptions& options = {});

void write_drift_text(std::ostream& os, const DriftReport& r);
void write_drift_json(std::ostream& os, const DriftReport& r);

}  // namespace pmp2::obs::analysis
