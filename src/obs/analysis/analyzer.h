// Post-mortem trace analyzer: turns one recorded Timeline into the paper's
// evaluation quantities without re-running the decode.
//
//   * per-track busy time (interval union of task spans, so nested picture
//     spans inside GOP tasks are not double-counted) and a blocked-time
//     decomposition over the classified wait kinds (queue-empty, barrier,
//     backpressure, plus legacy unclassified waits);
//   * the shared load summary (parallel::summarize_load) over worker
//     tracks — the same derivation the live decoders and the simulator
//     use, which is what makes analyzer output comparable to
//     bench_fig7/bench_fig12 within tolerance;
//   * the critical path through the task dependency structure (backward
//     walk: a task's predecessor is the previous span on its own track, or
//     — across a wait — the latest completion on any track that could have
//     released it) and Graham-bound what-if projections
//     T(N) = max(T1/N, critical-path busy) at other processor counts;
//   * a bucketed utilization timeline (mean number of busy workers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis/timeline.h"
#include "parallel/stats.h"

namespace pmp2::obs {
class JsonWriter;
}

namespace pmp2::obs::analysis {

/// Blocked time split by cause. `unclassified_ns` collects legacy kSyncWait
/// spans from traces recorded before wait classification.
struct WaitBreakdown {
  std::int64_t queue_ns = 0;
  std::int64_t barrier_ns = 0;
  std::int64_t backpressure_ns = 0;
  std::int64_t unclassified_ns = 0;

  [[nodiscard]] std::int64_t total() const {
    return queue_ns + barrier_ns + backpressure_ns + unclassified_ns;
  }
  WaitBreakdown& operator+=(const WaitBreakdown& o) {
    queue_ns += o.queue_ns;
    barrier_ns += o.barrier_ns;
    backpressure_ns += o.backpressure_ns;
    unclassified_ns += o.unclassified_ns;
    return *this;
  }
};

struct TrackAnalysis {
  std::string name;
  bool is_worker = false;  // false for the scan / display process tracks
  std::size_t spans = 0;
  std::uint64_t dropped = 0;
  std::uint64_t tasks = 0;       // GOP/slice/scan/display task spans
  std::int64_t busy_ns = 0;      // interval union of non-wait spans
  std::int64_t idle_ns = 0;      // makespan - busy - wait (clamped)
  std::int64_t first_ns = 0;     // earliest span begin on this track
  std::int64_t last_ns = 0;      // latest span end on this track
  WaitBreakdown wait;
};

/// Graham-bound projection at one processor count.
struct WhatIf {
  int workers = 0;
  std::int64_t projected_ns = 0;  // max(T1 / N, critical-path busy)
  double speedup = 0.0;           // T1 / projected_ns
};

struct UtilSample {
  std::int64_t t_ns = 0;     // bucket start (relative to trace t0)
  double busy_workers = 0.0; // mean workers busy during the bucket
};

struct AnalyzeOptions {
  /// Processor counts for the what-if table; empty = {1,2,4,8,12,14,16}.
  std::vector<int> what_if_workers;
  /// Buckets in the utilization timeline (0 disables it).
  int utilization_buckets = 64;
  /// Spans shorter than this are ignored by the critical-path walk (noise
  /// from sub-microsecond bookkeeping spans).
  std::int64_t min_span_ns = 0;
};

struct Analysis {
  bool ok = false;
  std::string error;
  std::vector<std::string> warnings;  // e.g. lossy-journal warning

  std::int64_t t0_ns = 0;
  std::int64_t t1_ns = 0;
  std::int64_t makespan_ns = 0;

  std::vector<TrackAnalysis> tracks;
  int worker_tracks = 0;
  std::int64_t total_busy_ns = 0;  // worker tracks only (= Graham T1)
  WaitBreakdown total_wait;        // worker tracks only
  std::int64_t total_idle_ns = 0;

  /// Distinct pictures / GOPs / tasks seen in the trace.
  int pictures = 0;
  int gops = 0;
  std::uint64_t tasks = 0;

  /// Shared load summary over worker tracks (busy = interval union, sync =
  /// wait total, idle = makespan remainder). `load.sync_ratio` is the
  /// paper's Fig. 12 quantity; `speedup_actual` vs `speedup_ideal` is the
  /// Fig. 7 ideal-vs-actual pair for this run.
  parallel::WorkerLoadSummary load;
  double speedup_actual = 0.0;  // total worker busy / makespan
  double speedup_ideal = 0.0;   // worker track count

  /// Critical path (over worker tracks' task spans plus the scan process
  /// track, so the serial input stage shows up as path time).
  std::int64_t critical_busy_ns = 0;   // busy time along the path
  std::size_t critical_spans = 0;      // task spans on the path
  std::int64_t critical_input_ns = 0;  // path time spent in the scan stage
  double parallelism = 0.0;            // T1 / critical_busy (avg parallelism)

  std::vector<WhatIf> what_if;
  std::vector<UtilSample> utilization;
};

[[nodiscard]] Analysis analyze(const Timeline& timeline,
                               const AnalyzeOptions& options = {});

/// Human-readable multi-section report (what pmp2_analyze prints).
void write_analysis_text(std::ostream& os, const Analysis& a);

/// Machine-readable form, one JSON object (schema pmp2-analysis/1).
void write_analysis_json(std::ostream& os, const Analysis& a);

}  // namespace pmp2::obs::analysis
