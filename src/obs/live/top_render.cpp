#include "obs/live/top_render.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pmp2::obs::live {

namespace {

std::string fixed(double v, int places) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", places, v);
  return buf;
}

const char* kReset = "\x1b[0m";
const char* kBold = "\x1b[1m";
const char* kGreen = "\x1b[32m";
const char* kYellow = "\x1b[33m";
const char* kRed = "\x1b[31m";

}  // namespace

std::string utilization_bar(double frac, int width) {
  if (width <= 0) return {};
  frac = std::clamp(frac, 0.0, 1.0);
  const int filled =
      static_cast<int>(frac * static_cast<double>(width) + 0.5);
  std::string bar;
  bar.reserve(static_cast<std::size_t>(width) + 2);
  bar.push_back('[');
  bar.append(static_cast<std::size_t>(filled), '#');
  bar.append(static_cast<std::size_t>(width - filled), '.');
  bar.push_back(']');
  return bar;
}

std::string render_frame(const LiveSnapshot& snapshot,
                         const TopOptions& options) {
  std::ostringstream os;
  const bool ansi = options.ansi;
  if (ansi) os << "\x1b[H\x1b[2J";  // home + clear

  const double t_s = static_cast<double>(snapshot.t_ns) / 1e9;
  if (ansi) os << kBold;
  os << "pmp2_top  t=" << fixed(t_s, 2) << "s  snapshot #" << snapshot.seq
     << "\n";
  if (ansi) os << kReset;
  os << "pictures " << snapshot.pictures << "  displayed "
     << snapshot.displayed << "  queue " << snapshot.queue_depth
     << "  scanned " << snapshot.scan_bytes << " B";
  if (snapshot.stall_ms >= 0) {
    os << "  progress-age " << fixed(snapshot.stall_ms, 0) << " ms";
  }
  os << "\n";
  os << "pics/s   total " << fixed(snapshot.pics_per_s_total, 1) << "   1s "
     << fixed(snapshot.pics_per_s_1s, 1) << "   10s "
     << fixed(snapshot.pics_per_s_10s, 1) << "\n";
  os << "latency  window      p50       p95       p99   (ms)\n";
  const struct {
    const char* label;
    double p50, p95, p99;
  } rows[] = {
      {"1s ", snapshot.p50_1s_ms, snapshot.p95_1s_ms, snapshot.p99_1s_ms},
      {"10s", snapshot.p50_10s_ms, snapshot.p95_10s_ms, snapshot.p99_10s_ms},
      {"all", snapshot.p50_total_ms, snapshot.p95_total_ms,
       snapshot.p99_total_ms},
  };
  for (const auto& row : rows) {
    os << "         " << row.label << "     " << fixed(row.p50, 2) << "  "
       << fixed(row.p95, 2) << "  " << fixed(row.p99, 2) << "\n";
  }
  if (!snapshot.counter_source.empty()) {
    os << "counters " << snapshot.counter_source;
    if (snapshot.cycles > 0) {
      // Ratios only mean anything once hardware counters are flowing; a
      // software source leaves them at zero.
      os << "  ipc(1s) " << fixed(snapshot.ipc_1s, 2) << "  miss(1s) "
         << fixed(snapshot.miss_rate_1s * 100.0, 1) << "%  stall(1s) "
         << fixed(snapshot.stall_frac_1s * 100.0, 1) << "%";
    } else {
      os << "  (no hardware counters)";
    }
    os << "\n";
  }

  os << "workers\n";
  // Bar width: frame width minus the fixed "  w%2d  " prefix and the
  // " 100% 12345p" suffix, clamped to something usable.
  const int bar_width = std::clamp(options.width - 26, 8, 60);
  for (const auto& ws : snapshot.workers) {
    const int pct = static_cast<int>(ws.utilization * 100.0 + 0.5);
    if (ansi) {
      os << (ws.utilization >= 0.85   ? kGreen
             : ws.utilization >= 0.50 ? kYellow
                                      : kRed);
    }
    char head[16];
    std::snprintf(head, sizeof head, "  w%-3d ", ws.id);
    os << head << utilization_bar(ws.utilization, bar_width) << " ";
    char tail[32];
    std::snprintf(tail, sizeof tail, "%3d%% %lldp", pct,
                  static_cast<long long>(ws.cell.pictures));
    os << tail;
    if (ansi) os << kReset;
    os << "\n";
  }

  if (!snapshot.alerts.empty()) {
    if (ansi) os << kBold << kRed;
    os << "alerts\n";
    for (const auto& alert : snapshot.alerts) {
      os << "  !! " << alert.rule << " value=" << fixed(alert.value, 2)
         << " threshold=" << fixed(alert.threshold, 2) << " since t="
         << fixed(static_cast<double>(alert.fired_at_ns) / 1e9, 2) << "s\n";
    }
    if (ansi) os << kReset;
  }
  return os.str();
}

}  // namespace pmp2::obs::live
