// In-flight run telemetry (docs/OBSERVABILITY.md, "Live telemetry").
//
// Everything the post-mortem stack (tracer, registry, reports) can say, it
// says after the run. This layer is the in-flight half: per-worker
// TelemetryCells that decoders update on every picture/GOP completion, a
// shared frame-latency histogram windowed by the sampler, and a couple of
// whole-run scalars (queue depth, whole-picture concealments) that have
// more than one writer.
//
// Concurrency design:
//   * One TelemetryCell per worker plus one for the scan producer and one
//     for the display process. Each cell has exactly one logical writer
//     (the owning thread; the display cell is written under the
//     DisplaySink mutex, which serializes its writers) and is published
//     through a seqlock so the sampler reads a *consistent* multi-field
//     snapshot without ever blocking a decoder.
//   * The payload fields are relaxed atomics and the sequence word uses
//     acquire/release (the Boehm seqlock construction), so the whole cell
//     is data-race-free under TSan — scripts/ci.sh runs the writer-storm
//     test in the tsan stage to hold that line.
//   * Cells are cache-line padded (alignas) so a worker bumping its own
//     counters never bounces another worker's line.
//   * Null-sink discipline, same as the tracer and registry: decoders test
//     one pointer per event; with no LiveTelemetry attached nothing else
//     is paid.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "util/timer.h"

namespace pmp2::obs::live {

/// One consistent cell snapshot. All cumulative unless noted; timestamps
/// are nanoseconds on the owning LiveTelemetry's epoch (construction).
struct CellSample {
  std::int64_t pictures = 0;         // pictures completed by this writer
  std::int64_t tasks = 0;            // GOPs or slices completed
  std::int64_t busy_ns = 0;          // CPU time spent decoding
  std::int64_t sync_ns = 0;          // wall time blocked on queues/deps
  std::int64_t backpressure_ns = 0;  // producer wall time blocked on bounds
  std::int64_t bytes = 0;            // bytes scanned/decoded by this writer
  std::int64_t concealed = 0;        // concealed slices
  std::int64_t quarantined = 0;      // whole pictures synthesized
  std::int64_t last_latency_ns = 0;  // latency of the newest completion
  std::int64_t last_progress_ns = -1;  // when it completed (-1 = never)
  // Cumulative hardware counters (zero unless a StageProfiler is attached
  // to the decoder; see LiveTelemetry::counter_mask for which are live).
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t cache_refs = 0;
  std::int64_t cache_misses = 0;
  std::int64_t stalled_backend = 0;
};

/// Seqlock-published, cache-line-padded per-worker cell. Single logical
/// writer; any number of concurrent readers via sample().
class alignas(128) TelemetryCell {
 public:
  /// Consistent snapshot: retries while a write generation is open. With
  /// the single-writer discipline the critical section is tiny, but on a
  /// single-core host the writer can be preempted *inside* it — a pure
  /// spin then burns the reader's whole quantum before the writer can
  /// close the generation (the pre-PR-8 writer-storm flake). After a
  /// short optimistic spin the reader yields between retries.
  [[nodiscard]] CellSample sample() const {
    int spins = 0;
    const auto backoff = [&spins] {
      if (++spins > kSampleSpinLimit) std::this_thread::yield();
    };
    for (;;) {
      const std::uint64_t before = seq_.load(std::memory_order_acquire);
      if (before & 1) {  // write in progress
        backoff();
        continue;
      }
      CellSample out;
      out.pictures = pictures_.load(std::memory_order_relaxed);
      out.tasks = tasks_.load(std::memory_order_relaxed);
      out.busy_ns = busy_ns_.load(std::memory_order_relaxed);
      out.sync_ns = sync_ns_.load(std::memory_order_relaxed);
      out.backpressure_ns =
          backpressure_ns_.load(std::memory_order_relaxed);
      out.bytes = bytes_.load(std::memory_order_relaxed);
      out.concealed = concealed_.load(std::memory_order_relaxed);
      out.quarantined = quarantined_.load(std::memory_order_relaxed);
      out.last_latency_ns =
          last_latency_ns_.load(std::memory_order_relaxed);
      out.last_progress_ns =
          last_progress_ns_.load(std::memory_order_relaxed);
      out.cycles = cycles_.load(std::memory_order_relaxed);
      out.instructions = instructions_.load(std::memory_order_relaxed);
      out.cache_refs = cache_refs_.load(std::memory_order_relaxed);
      out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
      out.stalled_backend =
          stalled_backend_.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == before) return out;
      backoff();
    }
  }

  /// Writer-side RAII: opens one seqlock generation around a batch of
  /// field updates, so the sampler never observes a half-applied event.
  /// Owner thread only (or externally serialized, as the display cell is).
  class Write {
   public:
    explicit Write(TelemetryCell& cell) : cell_(cell) {
      // The RMW with acquire ordering keeps the field stores below from
      // hoisting above the odd marker; the closing release store keeps
      // them from sinking below the even marker.
      cell_.seq_.fetch_add(1, std::memory_order_acq_rel);
    }
    Write(const Write&) = delete;
    Write& operator=(const Write&) = delete;
    ~Write() {
      cell_.seq_.fetch_add(1, std::memory_order_release);
    }

    Write& add_pictures(std::int64_t d = 1) { return add(cell_.pictures_, d); }
    Write& add_tasks(std::int64_t d = 1) { return add(cell_.tasks_, d); }
    Write& add_busy_ns(std::int64_t d) { return add(cell_.busy_ns_, d); }
    Write& set_sync_ns(std::int64_t v) { return set(cell_.sync_ns_, v); }
    Write& add_backpressure_ns(std::int64_t d) {
      return add(cell_.backpressure_ns_, d);
    }
    Write& set_bytes(std::int64_t v) { return set(cell_.bytes_, v); }
    Write& add_concealed(std::int64_t d) { return add(cell_.concealed_, d); }
    Write& add_quarantined(std::int64_t d = 1) {
      return add(cell_.quarantined_, d);
    }
    Write& set_last_latency_ns(std::int64_t v) {
      return set(cell_.last_latency_ns_, v);
    }
    Write& set_last_progress_ns(std::int64_t v) {
      return set(cell_.last_progress_ns_, v);
    }
    /// Folds a per-task counter delta (WorkerProf::take_task_delta) into
    /// the cell's cumulative counters.
    Write& add_counters(const prof::CounterSample& d) {
      add(cell_.cycles_,
          static_cast<std::int64_t>(d.get(prof::Counter::kCycles)));
      add(cell_.instructions_,
          static_cast<std::int64_t>(d.get(prof::Counter::kInstructions)));
      add(cell_.cache_refs_,
          static_cast<std::int64_t>(d.get(prof::Counter::kCacheRefs)));
      add(cell_.cache_misses_,
          static_cast<std::int64_t>(d.get(prof::Counter::kCacheMisses)));
      add(cell_.stalled_backend_,
          static_cast<std::int64_t>(d.get(prof::Counter::kStalledBackend)));
      return *this;
    }

   private:
    Write& add(std::atomic<std::int64_t>& f, std::int64_t d) {
      f.store(f.load(std::memory_order_relaxed) + d,
              std::memory_order_relaxed);
      return *this;
    }
    Write& set(std::atomic<std::int64_t>& f, std::int64_t v) {
      f.store(v, std::memory_order_relaxed);
      return *this;
    }
    TelemetryCell& cell_;
  };

 private:
  friend class Write;
  /// Optimistic spins before sample() starts yielding between retries.
  static constexpr int kSampleSpinLimit = 64;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::int64_t> pictures_{0};
  std::atomic<std::int64_t> tasks_{0};
  std::atomic<std::int64_t> busy_ns_{0};
  std::atomic<std::int64_t> sync_ns_{0};
  std::atomic<std::int64_t> backpressure_ns_{0};
  std::atomic<std::int64_t> bytes_{0};
  std::atomic<std::int64_t> concealed_{0};
  std::atomic<std::int64_t> quarantined_{0};
  std::atomic<std::int64_t> last_latency_ns_{0};
  std::atomic<std::int64_t> last_progress_ns_{-1};
  std::atomic<std::int64_t> cycles_{0};
  std::atomic<std::int64_t> instructions_{0};
  std::atomic<std::int64_t> cache_refs_{0};
  std::atomic<std::int64_t> cache_misses_{0};
  std::atomic<std::int64_t> stalled_backend_{0};
};

/// The per-run telemetry surface one decoder (or a sequence of decoder
/// runs sharing worker indices, as pmp2_soak does) publishes into and the
/// LiveSampler reads from. Attach via GopDecoderConfig::live /
/// SliceDecoderConfig::live; must outlive the decode and be sized with at
/// least as many workers as the decoder uses (the decoders ignore an
/// undersized instance rather than write out of range).
class LiveTelemetry {
 public:
  explicit LiveTelemetry(int workers)
      : workers_(workers > 0 ? workers : 0),
        cells_(static_cast<std::size_t>(workers_) + 2) {}

  [[nodiscard]] int workers() const { return workers_; }

  [[nodiscard]] TelemetryCell& worker(int w) {
    return cells_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] const TelemetryCell& worker(int w) const {
    return cells_[static_cast<std::size_t>(w)];
  }
  /// The scan/demux producer's cell (bytes scanned, GOPs indexed,
  /// backpressure time).
  [[nodiscard]] TelemetryCell& scan() {
    return cells_[static_cast<std::size_t>(workers_)];
  }
  [[nodiscard]] const TelemetryCell& scan() const {
    return cells_[static_cast<std::size_t>(workers_)];
  }
  /// The display process's cell (pictures emitted in display order).
  [[nodiscard]] TelemetryCell& display() {
    return cells_[static_cast<std::size_t>(workers_) + 1];
  }
  [[nodiscard]] const TelemetryCell& display() const {
    return cells_[static_cast<std::size_t>(workers_) + 1];
  }

  /// Nanoseconds since construction — the telemetry epoch every
  /// last_progress_ns / snapshot timestamp is on.
  [[nodiscard]] std::int64_t now_ns() const { return timer_.elapsed_ns(); }

  /// Shared cumulative frame-latency histogram (all workers record; the
  /// sampler delta-windows it into trailing-1s/10s percentiles).
  [[nodiscard]] Histogram& frame_latency() { return frame_latency_; }
  [[nodiscard]] const Histogram& frame_latency() const {
    return frame_latency_;
  }

  /// Current depth of the decode work queue (GOP tasks queued, or slice-
  /// decoder pictures appended but not yet complete). Multi-writer scalar,
  /// so it lives outside the cells.
  void add_queue_depth(std::int64_t d) {
    queue_depth_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }

  /// Identity of the counter source feeding the cells' counter columns
  /// ("" = no profiler attached). Set once by the harness before decode
  /// threads start; the sampler stamps it into snapshots so consumers
  /// never misread software-clock numbers as PMU cycles.
  void set_counter_source(std::string name, unsigned mask) {
    counter_source_ = std::move(name);
    counter_mask_ = mask;
  }
  [[nodiscard]] const std::string& counter_source() const {
    return counter_source_;
  }
  [[nodiscard]] unsigned counter_mask() const { return counter_mask_; }

  /// Whole pictures concealed outside any single worker's ownership (the
  /// slice coordinator synthesizes them under its scheduling mutex, from
  /// whichever thread gets there first).
  void add_concealed_picture() {
    concealed_pictures_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t concealed_pictures() const {
    return concealed_pictures_.load(std::memory_order_relaxed);
  }

 private:
  int workers_;
  WallTimer timer_;
  std::string counter_source_;
  unsigned counter_mask_ = 0;
  Histogram frame_latency_;
  std::atomic<std::int64_t> queue_depth_{0};
  std::atomic<std::int64_t> concealed_pictures_{0};
  // workers_ worker cells, then scan, then display.
  std::vector<TelemetryCell> cells_;
};

}  // namespace pmp2::obs::live
