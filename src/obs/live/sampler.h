// LiveSampler: the reader half of the live telemetry subsystem
// (docs/OBSERVABILITY.md, "Live telemetry").
//
// A sampler thread periodically snapshots every TelemetryCell (seqlock
// reads — never blocks a decoder), maintains sliding windows of the shared
// frame-latency histogram (ring of per-tick delta buckets), evaluates SLO
// rules with trigger/clear hysteresis, and exports each tick as one
// newline-delimited JSON snapshot (schema "pmp2-live/1") and/or an
// atomically-replaced Prometheus-style text exposition.
//
// The tick core (sample_at) is a deterministic function of the telemetry
// state and the supplied clock value, so tests drive it with synthetic
// timestamps and never need the thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/live/telemetry.h"
#include "obs/metrics.h"

namespace pmp2::obs::live {

/// Sliding-window aggregation over one cumulative histogram: push() a
/// cumulative snapshot per tick; the ring keeps per-tick deltas stamped
/// with their tick time, and over() merges the buckets inside a trailing
/// window. Buckets older than `max_window_ns` expire on push.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::int64_t max_window_ns = 10'000'000'000)
      : max_window_ns_(max_window_ns) {}

  /// Records the tick at `t_ns`: cumulative histogram state plus the
  /// cumulative event count whose rate the window reports (pictures).
  void push(std::int64_t t_ns, const HistogramSnapshot& cumulative,
            std::int64_t events);

  struct View {
    HistogramSnapshot hist;     // merged deltas inside the window
    std::int64_t events = 0;    // events completed inside the window
    std::int64_t span_ns = 0;   // time actually covered (<= window at start)
    [[nodiscard]] double events_per_second() const {
      return span_ns > 0
                 ? static_cast<double>(events) * 1e9 /
                       static_cast<double>(span_ns)
                 : 0.0;
    }
  };

  /// Trailing-window view at `now_ns`: merges every bucket whose tick time
  /// is inside (now - window, now].
  [[nodiscard]] View over(std::int64_t now_ns,
                          std::int64_t window_ns) const;

  [[nodiscard]] std::size_t buckets() const { return ring_.size(); }

 private:
  struct Bucket {
    std::int64_t t_ns = 0;          // tick time this delta closed at
    std::int64_t prev_t_ns = 0;     // previous tick (delta covers the gap)
    HistogramSnapshot delta;
    std::int64_t events = 0;
  };
  std::int64_t max_window_ns_;
  std::deque<Bucket> ring_;
  HistogramSnapshot prev_;
  std::int64_t prev_events_ = 0;
  std::int64_t prev_t_ns_ = 0;
  bool have_prev_ = false;
};

/// SLO rule set evaluated every tick. A rule with threshold 0 is off.
/// Rules fire after `trigger_ticks` consecutive violating ticks and clear
/// after `clear_ticks` consecutive healthy ticks (hysteresis, so one noisy
/// tick neither raises nor silences an alert).
struct SloRules {
  double latency_p99_ms = 0;  // ceiling on trailing-1s p99 frame latency
  double min_pics_s = 0;      // floor on trailing-1s throughput
  double max_stall_ms = 0;    // ceiling on the progress-stall age
  int trigger_ticks = 3;
  int clear_ticks = 3;

  [[nodiscard]] bool any() const {
    return latency_p99_ms > 0 || min_pics_s > 0 || max_stall_ms > 0;
  }

  /// Parses "latency_p99_ms=30,min_pics_s=24,max_stall_ms=500" (any
  /// subset, comma-separated; optional trigger_ticks=/clear_ticks=).
  /// False + *error on unknown keys or unparseable numbers.
  static bool parse(std::string_view text, SloRules& out,
                    std::string* error = nullptr);
};

/// One alert: a rule that fired (and possibly cleared again).
struct Alert {
  std::string rule;            // "latency_p99_ms" | "min_pics_s" | ...
  double value = 0;            // measured value at the firing tick
  double threshold = 0;
  std::int64_t fired_at_ns = 0;
  std::int64_t cleared_at_ns = -1;  // -1 while active
  [[nodiscard]] bool active() const { return cleared_at_ns < 0; }
};

/// Per-worker slice of a snapshot.
struct WorkerSample {
  int id = 0;
  CellSample cell;
  double utilization = 0;  // busy-time delta / wall delta over this tick
};

/// One tick's full state — what a NDJSON line serializes.
struct LiveSnapshot {
  static constexpr const char* kSchema = "pmp2-live/1";
  std::uint64_t seq = 0;
  std::int64_t t_ns = 0;          // telemetry-epoch time of the tick
  std::int64_t pictures = 0;      // decoded (worker cells + concealed)
  std::int64_t displayed = 0;     // emitted in display order
  std::int64_t queue_depth = 0;
  std::int64_t scan_bytes = 0;
  double pics_per_s_total = 0;    // pictures / t
  double pics_per_s_1s = 0;
  double pics_per_s_10s = 0;
  double p50_1s_ms = 0, p95_1s_ms = 0, p99_1s_ms = 0;
  double p50_10s_ms = 0, p95_10s_ms = 0, p99_10s_ms = 0;
  double p50_total_ms = 0, p95_total_ms = 0, p99_total_ms = 0;
  double stall_ms = -1;           // age of newest progress (-1 = none yet)
  // Hardware counter columns (docs/OBSERVABILITY.md, "Hardware
  // profiling"): present only when a StageProfiler feeds the telemetry
  // (counter_source non-empty); cumulative over workers + scan, with
  // trailing-short-window ratios. Software-source runs have only the
  // source stamp — consumers must never read the ratios as PMU truth
  // without checking it.
  std::string counter_source;     // "" = no profiler attached
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t cache_refs = 0;
  std::int64_t cache_misses = 0;
  std::int64_t stalled_backend = 0;
  double ipc_1s = 0;              // instructions/cycles inside the window
  double miss_rate_1s = 0;        // cache_misses/cache_refs
  double stall_frac_1s = 0;       // stalled_backend/cycles
  std::vector<WorkerSample> workers;
  std::vector<Alert> alerts;      // alerts active at this tick
};

class LiveSampler {
 public:
  struct Options {
    std::int64_t interval_ms = 250;
    std::int64_t window_short_ms = 1'000;
    std::int64_t window_long_ms = 10'000;
    SloRules slo;
    /// NDJSON snapshot stream: one JSON object per line, appended and
    /// flushed per tick. A fifo works (the open blocks until a reader
    /// attaches, as fifos do). Empty = no stream.
    std::string ndjson_path;
    /// Prometheus-style text exposition, atomically replaced (write to
    /// path.tmp + rename) every tick. Empty = off.
    std::string prometheus_path;
    /// In-process consumers (pmp2_soak progress, tests).
    std::function<void(const LiveSnapshot&)> on_snapshot;
    /// `fired` true when the alert raises, false when it clears.
    std::function<void(const Alert&, bool fired)> on_alert;
  };

  LiveSampler(LiveTelemetry& telemetry, Options options);
  ~LiveSampler();  // stop()s if still running

  /// Spawns the sampler thread. No-op if already started.
  void start();

  /// Stops the thread after one final tick, so short runs still get a
  /// closing snapshot. Idempotent.
  void stop();

  /// The deterministic tick core: samples every cell, advances the
  /// windows, evaluates the SLO rules and runs the exporters/callbacks.
  /// Called by the thread with the real clock; tests call it directly
  /// with synthetic, strictly increasing timestamps.
  LiveSnapshot sample_at(std::int64_t now_ns);

  /// Every alert that ever fired (active and cleared), in firing order.
  [[nodiscard]] std::vector<Alert> alert_log() const;

  /// Ticks taken so far.
  [[nodiscard]] std::uint64_t snapshots() const;

  /// True when every exporter write so far succeeded.
  [[nodiscard]] bool io_ok() const;

 private:
  struct RuleState {
    const char* name;
    int violating = 0;
    int healthy = 0;
    int active_index = -1;  // index into alerts_ while active
  };

  LiveSnapshot build_snapshot(std::int64_t now_ns);
  void evaluate_rule(RuleState& state, double value, double threshold,
                     bool violated, std::int64_t now_ns,
                     std::vector<Alert>& active);
  void export_snapshot(const LiveSnapshot& snapshot);

  LiveTelemetry& telemetry_;
  Options options_;

  // Tick state: owned by whichever single context is ticking (the thread,
  // or a test driving sample_at). Guarded by tick_mutex_ for the alert_log
  // accessor.
  mutable std::mutex tick_mutex_;
  SlidingWindow window_;
  std::uint64_t seq_ = 0;
  std::vector<CellSample> prev_cells_;
  std::int64_t prev_t_ns_ = -1;
  // Counter window: per-tick deltas of the summed hardware counters,
  // expired against the short window so the ipc/miss/stall ratios are
  // trailing-window figures like pics_per_s_1s.
  struct CounterTick {
    std::int64_t t_ns = 0;
    std::int64_t d[5] = {0, 0, 0, 0, 0};  // cycles..stalled_backend
  };
  std::deque<CounterTick> counter_ring_;
  std::int64_t prev_counters_[5] = {0, 0, 0, 0, 0};
  std::vector<Alert> alerts_;  // full log; active ones referenced by index
  RuleState latency_state_{"latency_p99_ms"};
  RuleState throughput_state_{"min_pics_s"};
  RuleState stall_state_{"max_stall_ms"};

  std::ofstream ndjson_;
  bool ndjson_opened_ = false;
  bool io_ok_ = true;

  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
};

/// Serializes one snapshot as a single NDJSON line (no trailing newline).
void write_snapshot_json(const LiveSnapshot& snapshot, std::ostream& os);

/// The Prometheus-style text exposition of one snapshot.
[[nodiscard]] std::string prometheus_text(const LiveSnapshot& snapshot);

/// Atomic file replace (write `path`.tmp, rename over `path`); false on
/// I/O failure.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view content);

/// Parses one NDJSON line produced by write_snapshot_json back into a
/// LiveSnapshot. False (+ *error) on parse failure or schema mismatch —
/// the read half used by pmp2_top and the round-trip tests.
[[nodiscard]] bool parse_snapshot(std::string_view line, LiveSnapshot& out,
                                  std::string* error = nullptr);

}  // namespace pmp2::obs::live
