#include "obs/live/session_set.h"

namespace pmp2::obs::live {

SessionSurface& SessionSurfaces::open(int id, const std::string& name) {
  const std::scoped_lock lock(mutex_);
  for (auto& s : surfaces_) {
    if (s->id == id) return *s;
  }
  surfaces_.push_back(std::make_unique<SessionSurface>(name, id, workers_));
  return *surfaces_.back();
}

SessionSurface* SessionSurfaces::find(int id) {
  const std::scoped_lock lock(mutex_);
  for (auto& s : surfaces_) {
    if (s->id == id) return s.get();
  }
  return nullptr;
}

bool SessionSurfaces::close(int id) {
  std::unique_ptr<SessionSurface> victim;
  {
    const std::scoped_lock lock(mutex_);
    for (auto it = surfaces_.begin(); it != surfaces_.end(); ++it) {
      if ((*it)->id == id) {
        victim = std::move(*it);
        surfaces_.erase(it);
        break;
      }
    }
  }
  return victim != nullptr;  // destroyed outside the registry lock
}

void SessionSurfaces::each(
    const std::function<void(const SessionSurface&)>& fn) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& s : surfaces_) fn(*s);
}

std::size_t SessionSurfaces::size() const {
  const std::scoped_lock lock(mutex_);
  return surfaces_.size();
}

SessionSummary SessionSurfaces::summarize(const SessionSurface& surface) {
  SessionSummary out;
  out.name = surface.name;
  out.id = surface.id;
  for (int w = 0; w < surface.live.workers(); ++w) {
    const CellSample c = surface.live.worker(w).sample();
    out.pictures += c.pictures;
    out.busy_ns += c.busy_ns;
    out.concealed += c.concealed;
    out.quarantined += c.quarantined;
  }
  const HistogramSnapshot lat = surface.queue_latency.snapshot();
  out.latency_p50_ns = lat.percentile(0.50);
  out.latency_p95_ns = lat.percentile(0.95);
  out.latency_p99_ns = lat.percentile(0.99);
  return out;
}

}  // namespace pmp2::obs::live
