// Per-session telemetry surfaces (docs/SERVING.md, docs/OBSERVABILITY.md).
//
// The single-run obs layer assumes one LiveTelemetry per process-lifetime
// decode. A DecodeServer multiplexes N sessions over one worker pool, and
// isolation has an observability half: each session's pictures, latency
// histogram and recovery counters must be attributable to *that* session,
// or a corrupt neighbor's concealments pollute everyone's dashboards.
//
// SessionSurfaces is the registry the server keeps: one LiveTelemetry per
// open session (deque-backed, so surface addresses stay stable while
// workers write them), keyed by the serve-layer session id, plus a
// serve-side frame-latency histogram per session (queue-inclusive latency:
// GOP enqueue to display emission — a superset of the decode-only latency
// the per-worker cells carry). Terminal sessions keep their surface so
// post-run reporting can read them after teardown, until close() releases
// it (DecodeServer::forget) — a long-lived server would otherwise retain
// a surface for every session ever submitted.
//
// Thread-safety: open() and each() serialize on one mutex; the returned
// surfaces follow LiveTelemetry's own rules (seqlock cells, relaxed
// scalars), so workers never take the registry mutex on the decode path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "obs/live/telemetry.h"
#include "obs/metrics.h"

namespace pmp2::obs::live {

/// One session's surfaces: the standard LiveTelemetry (per-worker cells
/// shared with the decode core) plus the serve-level latency histogram.
struct SessionSurface {
  std::string name;
  int id = 0;
  LiveTelemetry live;
  Histogram queue_latency;  // enqueue -> display emission, nanoseconds

  SessionSurface(std::string n, int session_id, int workers)
      : name(std::move(n)), id(session_id), live(workers) {}
};

/// Summary of one surface, for reports and monitors.
struct SessionSummary {
  std::string name;
  int id = 0;
  std::int64_t pictures = 0;     // sum of worker-cell picture counts
  std::int64_t busy_ns = 0;      // sum of worker-cell busy time
  std::int64_t concealed = 0;    // concealed slices
  std::int64_t quarantined = 0;  // whole pictures synthesized
  double latency_p50_ns = 0.0;   // queue-inclusive percentiles
  double latency_p95_ns = 0.0;
  double latency_p99_ns = 0.0;
};

class SessionSurfaces {
 public:
  /// `workers` sizes every session's per-worker cells (the shared pool
  /// width — cells are per pool worker, not per session thread).
  explicit SessionSurfaces(int workers) : workers_(workers) {}

  /// Opens (or returns) the surface for session `id`. Stable address for
  /// the registry's lifetime.
  SessionSurface& open(int id, const std::string& name);

  /// Surface for an already-open id; nullptr when unknown.
  [[nodiscard]] SessionSurface* find(int id);

  /// Releases the surface for `id` (invalidating pointers to it); false
  /// when unknown. Callers must guarantee no writer still holds the
  /// surface — the server only closes after the session is terminal.
  bool close(int id);

  /// Visits every surface in open order.
  void each(const std::function<void(const SessionSurface&)>& fn) const;

  [[nodiscard]] std::size_t size() const;

  /// Snapshot-summarizes one surface (percentiles from the serve-level
  /// histogram; totals from the per-worker cells).
  [[nodiscard]] static SessionSummary summarize(
      const SessionSurface& surface);

 private:
  const int workers_;
  mutable std::mutex mutex_;
  // Owned indirectly so close() can erase one entry without disturbing
  // the addresses workers hold for the others.
  std::deque<std::unique_ptr<SessionSurface>> surfaces_;
};

}  // namespace pmp2::obs::live
