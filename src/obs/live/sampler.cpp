#include "obs/live/sampler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/json.h"
#include "obs/json_parse.h"

namespace pmp2::obs::live {

// ---------------------------------------------------------------------------
// SlidingWindow

void SlidingWindow::push(std::int64_t t_ns,
                         const HistogramSnapshot& cumulative,
                         std::int64_t events) {
  Bucket bucket;
  bucket.t_ns = t_ns;
  bucket.prev_t_ns = have_prev_ ? prev_t_ns_ : 0;
  bucket.delta = cumulative;
  if (have_prev_) bucket.delta.subtract(prev_);
  bucket.events = std::max<std::int64_t>(0, events - prev_events_);
  ring_.push_back(std::move(bucket));
  prev_ = cumulative;
  prev_events_ = events;
  prev_t_ns_ = t_ns;
  have_prev_ = true;
  // Expiry: a bucket whose tick time has left the longest window can never
  // be merged again.
  while (!ring_.empty() && ring_.front().t_ns <= t_ns - max_window_ns_) {
    ring_.pop_front();
  }
}

SlidingWindow::View SlidingWindow::over(std::int64_t now_ns,
                                        std::int64_t window_ns) const {
  View view;
  const std::int64_t start = now_ns - window_ns;
  std::int64_t covered_from = now_ns;
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->t_ns <= start) break;  // older ticks are fully outside
    view.hist.add(it->delta);
    view.events += it->events;
    covered_from = it->prev_t_ns;
  }
  if (covered_from < now_ns) {
    // A bucket straddling the window edge is merged whole; clamp the span
    // to the window so the rate stays a trailing-window rate.
    view.span_ns = now_ns - std::max(covered_from, start);
  }
  return view;
}

// ---------------------------------------------------------------------------
// SloRules

bool SloRules::parse(std::string_view text, SloRules& out,
                     std::string* error) {
  SloRules rules;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      if (error) *error = "expected key=value in '" + std::string(item) + "'";
      return false;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string value(item.substr(eq + 1));
    double parsed = 0;
    try {
      std::size_t used = 0;
      parsed = std::stod(value, &used);
      if (used != value.size()) throw std::invalid_argument(value);
    } catch (...) {
      if (error) *error = "bad number '" + value + "' for '" +
                          std::string(key) + "'";
      return false;
    }
    if (key == "latency_p99_ms") {
      rules.latency_p99_ms = parsed;
    } else if (key == "min_pics_s") {
      rules.min_pics_s = parsed;
    } else if (key == "max_stall_ms") {
      rules.max_stall_ms = parsed;
    } else if (key == "trigger_ticks") {
      rules.trigger_ticks = std::max(1, static_cast<int>(parsed));
    } else if (key == "clear_ticks") {
      rules.clear_ticks = std::max(1, static_cast<int>(parsed));
    } else {
      if (error) *error = "unknown SLO rule '" + std::string(key) + "'";
      return false;
    }
  }
  out = rules;
  return true;
}

// ---------------------------------------------------------------------------
// LiveSampler

LiveSampler::LiveSampler(LiveTelemetry& telemetry, Options options)
    : telemetry_(telemetry),
      options_(std::move(options)),
      window_(options_.window_long_ms * 1'000'000) {}

LiveSampler::~LiveSampler() { stop(); }

void LiveSampler::start() {
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] {
    for (;;) {
      bool stop_now;
      {
        std::unique_lock lock(stop_mutex_);
        stop_cv_.wait_for(lock,
                          std::chrono::milliseconds(options_.interval_ms),
                          [this] { return stopping_; });
        stop_now = stopping_;
      }
      sample_at(telemetry_.now_ns());
      if (stop_now) break;
    }
  });
}

void LiveSampler::stop() {
  if (!started_) return;
  {
    const std::scoped_lock lock(stop_mutex_);
    stopping_ = true;
    stop_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

LiveSnapshot LiveSampler::sample_at(std::int64_t now_ns) {
  const std::scoped_lock lock(tick_mutex_);
  LiveSnapshot snapshot = build_snapshot(now_ns);

  // SLO evaluation with hysteresis. The latency rule arms once the short
  // window has samples; throughput and stall arm once the run has made any
  // progress at all (so a sampler started before the decode never alarms
  // on the empty prefix), and stall additionally requires outstanding work
  // (a finished run aging quietly is not a stall).
  const bool any_progress = snapshot.pictures > 0;
  const bool outstanding =
      snapshot.queue_depth > 0 || snapshot.displayed < snapshot.pictures;
  evaluate_rule(latency_state_, snapshot.p99_1s_ms,
                options_.slo.latency_p99_ms,
                snapshot.p99_1s_ms > options_.slo.latency_p99_ms &&
                    window_.over(now_ns, options_.window_short_ms * 1'000'000)
                            .hist.count > 0,
                now_ns, snapshot.alerts);
  evaluate_rule(throughput_state_, snapshot.pics_per_s_1s,
                options_.slo.min_pics_s,
                any_progress &&
                    snapshot.pics_per_s_1s < options_.slo.min_pics_s,
                now_ns, snapshot.alerts);
  evaluate_rule(stall_state_, snapshot.stall_ms, options_.slo.max_stall_ms,
                any_progress && outstanding && snapshot.stall_ms >= 0 &&
                    snapshot.stall_ms > options_.slo.max_stall_ms,
                now_ns, snapshot.alerts);

  export_snapshot(snapshot);
  if (options_.on_snapshot) options_.on_snapshot(snapshot);
  return snapshot;
}

LiveSnapshot LiveSampler::build_snapshot(std::int64_t now_ns) {
  LiveSnapshot snapshot;
  snapshot.seq = ++seq_;
  snapshot.t_ns = now_ns;

  const int workers = telemetry_.workers();
  snapshot.workers.reserve(static_cast<std::size_t>(workers));
  if (prev_cells_.size() != static_cast<std::size_t>(workers)) {
    prev_cells_.assign(static_cast<std::size_t>(workers), CellSample{});
  }
  std::int64_t newest_progress = -1;
  // First tick: the baseline is the telemetry epoch (prev_cells_ are
  // zero), so utilization is meaningful from snapshot #1 on.
  const double tick_wall_ns = static_cast<double>(
      now_ns - std::max<std::int64_t>(0, prev_t_ns_));
  for (int w = 0; w < workers; ++w) {
    WorkerSample ws;
    ws.id = w;
    ws.cell = telemetry_.worker(w).sample();
    if (tick_wall_ns > 0) {
      const double busy_delta = static_cast<double>(
          ws.cell.busy_ns - prev_cells_[static_cast<std::size_t>(w)].busy_ns);
      ws.utilization = std::clamp(busy_delta / tick_wall_ns, 0.0, 1.0);
    }
    snapshot.pictures += ws.cell.pictures;
    newest_progress = std::max(newest_progress, ws.cell.last_progress_ns);
    snapshot.cycles += ws.cell.cycles;
    snapshot.instructions += ws.cell.instructions;
    snapshot.cache_refs += ws.cell.cache_refs;
    snapshot.cache_misses += ws.cell.cache_misses;
    snapshot.stalled_backend += ws.cell.stalled_backend;
    prev_cells_[static_cast<std::size_t>(w)] = ws.cell;
    snapshot.workers.push_back(std::move(ws));
  }
  const CellSample scan = telemetry_.scan().sample();
  const CellSample display = telemetry_.display().sample();
  snapshot.scan_bytes = scan.bytes;
  snapshot.displayed = display.pictures;
  newest_progress = std::max(newest_progress, scan.last_progress_ns);
  newest_progress = std::max(newest_progress, display.last_progress_ns);
  snapshot.pictures += telemetry_.concealed_pictures();
  snapshot.queue_depth = telemetry_.queue_depth();
  snapshot.stall_ms =
      newest_progress >= 0
          ? static_cast<double>(now_ns - newest_progress) / 1e6
          : -1.0;

  const HistogramSnapshot cumulative = telemetry_.frame_latency().snapshot();
  window_.push(now_ns, cumulative, snapshot.pictures);
  const auto short_view =
      window_.over(now_ns, options_.window_short_ms * 1'000'000);
  const auto long_view =
      window_.over(now_ns, options_.window_long_ms * 1'000'000);
  snapshot.pics_per_s_1s = short_view.events_per_second();
  snapshot.pics_per_s_10s = long_view.events_per_second();
  snapshot.pics_per_s_total =
      now_ns > 0 ? static_cast<double>(snapshot.pictures) * 1e9 /
                       static_cast<double>(now_ns)
                 : 0.0;
  snapshot.p50_1s_ms = short_view.hist.percentile(0.50) / 1e6;
  snapshot.p95_1s_ms = short_view.hist.percentile(0.95) / 1e6;
  snapshot.p99_1s_ms = short_view.hist.percentile(0.99) / 1e6;
  snapshot.p50_10s_ms = long_view.hist.percentile(0.50) / 1e6;
  snapshot.p95_10s_ms = long_view.hist.percentile(0.95) / 1e6;
  snapshot.p99_10s_ms = long_view.hist.percentile(0.99) / 1e6;
  snapshot.p50_total_ms = cumulative.percentile(0.50) / 1e6;
  snapshot.p95_total_ms = cumulative.percentile(0.95) / 1e6;
  snapshot.p99_total_ms = cumulative.percentile(0.99) / 1e6;

  // Counter columns. The scan process counts too — its flush lands in the
  // scan cell, not a worker cell.
  snapshot.counter_source = telemetry_.counter_source();
  snapshot.cycles += scan.cycles;
  snapshot.instructions += scan.instructions;
  snapshot.cache_refs += scan.cache_refs;
  snapshot.cache_misses += scan.cache_misses;
  snapshot.stalled_backend += scan.stalled_backend;
  if (!snapshot.counter_source.empty()) {
    const std::int64_t totals[5] = {snapshot.cycles, snapshot.instructions,
                                    snapshot.cache_refs,
                                    snapshot.cache_misses,
                                    snapshot.stalled_backend};
    CounterTick tick;
    tick.t_ns = now_ns;
    for (int i = 0; i < 5; ++i) {
      tick.d[i] = std::max<std::int64_t>(0, totals[i] - prev_counters_[i]);
      prev_counters_[i] = totals[i];
    }
    counter_ring_.push_back(tick);
    const std::int64_t window_ns = options_.window_short_ms * 1'000'000;
    while (!counter_ring_.empty() &&
           counter_ring_.front().t_ns <= now_ns - window_ns) {
      counter_ring_.pop_front();
    }
    std::int64_t sum[5] = {0, 0, 0, 0, 0};
    for (const CounterTick& t : counter_ring_) {
      for (int i = 0; i < 5; ++i) sum[i] += t.d[i];
    }
    const auto ratio = [](std::int64_t num, std::int64_t den) {
      return den > 0 ? static_cast<double>(num) / static_cast<double>(den)
                     : 0.0;
    };
    snapshot.ipc_1s = ratio(sum[1], sum[0]);
    snapshot.miss_rate_1s = ratio(sum[3], sum[2]);
    snapshot.stall_frac_1s = ratio(sum[4], sum[0]);
  }
  prev_t_ns_ = now_ns;
  return snapshot;
}

void LiveSampler::evaluate_rule(RuleState& state, double value,
                                double threshold, bool violated,
                                std::int64_t now_ns,
                                std::vector<Alert>& active) {
  if (threshold <= 0) return;  // rule off
  if (violated) {
    ++state.violating;
    state.healthy = 0;
    if (state.active_index < 0 &&
        state.violating >= options_.slo.trigger_ticks) {
      Alert alert;
      alert.rule = state.name;
      alert.value = value;
      alert.threshold = threshold;
      alert.fired_at_ns = now_ns;
      state.active_index = static_cast<int>(alerts_.size());
      alerts_.push_back(alert);
      if (options_.on_alert) options_.on_alert(alert, true);
    }
  } else {
    ++state.healthy;
    state.violating = 0;
    if (state.active_index >= 0 &&
        state.healthy >= options_.slo.clear_ticks) {
      Alert& alert = alerts_[static_cast<std::size_t>(state.active_index)];
      alert.cleared_at_ns = now_ns;
      state.active_index = -1;
      if (options_.on_alert) options_.on_alert(alert, false);
    }
  }
  if (state.active_index >= 0) {
    active.push_back(alerts_[static_cast<std::size_t>(state.active_index)]);
  }
}

void LiveSampler::export_snapshot(const LiveSnapshot& snapshot) {
  if (!options_.ndjson_path.empty()) {
    if (!ndjson_opened_) {
      ndjson_.open(options_.ndjson_path,
                   std::ios::out | std::ios::trunc);
      ndjson_opened_ = true;
      if (!ndjson_) io_ok_ = false;
    }
    if (ndjson_) {
      write_snapshot_json(snapshot, ndjson_);
      ndjson_ << '\n';
      ndjson_.flush();
      if (!ndjson_) io_ok_ = false;
    }
  }
  if (!options_.prometheus_path.empty()) {
    if (!write_file_atomic(options_.prometheus_path,
                           prometheus_text(snapshot))) {
      io_ok_ = false;
    }
  }
}

std::vector<Alert> LiveSampler::alert_log() const {
  const std::scoped_lock lock(tick_mutex_);
  return alerts_;
}

std::uint64_t LiveSampler::snapshots() const {
  const std::scoped_lock lock(tick_mutex_);
  return seq_;
}

bool LiveSampler::io_ok() const {
  const std::scoped_lock lock(tick_mutex_);
  return io_ok_;
}

// ---------------------------------------------------------------------------
// Exporters

namespace {

void write_alert_json(JsonWriter& w, const Alert& alert) {
  w.begin_object();
  w.key("rule").value(alert.rule);
  w.key("value").value(alert.value);
  w.key("threshold").value(alert.threshold);
  w.key("fired_at_ns").value(alert.fired_at_ns);
  w.key("cleared_at_ns").value(alert.cleared_at_ns);
  w.key("active").value(alert.active());
  w.end_object();
}

}  // namespace

void write_snapshot_json(const LiveSnapshot& snapshot, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(LiveSnapshot::kSchema);
  w.key("seq").value(static_cast<std::int64_t>(snapshot.seq));
  w.key("t_ns").value(snapshot.t_ns);
  w.key("pictures").value(snapshot.pictures);
  w.key("displayed").value(snapshot.displayed);
  w.key("queue_depth").value(snapshot.queue_depth);
  w.key("scan_bytes").value(snapshot.scan_bytes);
  w.key("pics_per_s").begin_object();
  w.key("total").value(snapshot.pics_per_s_total);
  w.key("w1s").value(snapshot.pics_per_s_1s);
  w.key("w10s").value(snapshot.pics_per_s_10s);
  w.end_object();
  w.key("latency_ms").begin_object();
  w.key("w1s").begin_object();
  w.key("p50").value(snapshot.p50_1s_ms);
  w.key("p95").value(snapshot.p95_1s_ms);
  w.key("p99").value(snapshot.p99_1s_ms);
  w.end_object();
  w.key("w10s").begin_object();
  w.key("p50").value(snapshot.p50_10s_ms);
  w.key("p95").value(snapshot.p95_10s_ms);
  w.key("p99").value(snapshot.p99_10s_ms);
  w.end_object();
  w.key("total").begin_object();
  w.key("p50").value(snapshot.p50_total_ms);
  w.key("p95").value(snapshot.p95_total_ms);
  w.key("p99").value(snapshot.p99_total_ms);
  w.end_object();
  w.end_object();
  w.key("stall_ms").value(snapshot.stall_ms);
  if (!snapshot.counter_source.empty()) {
    // Additive: absent entirely on runs without a profiler, so old readers
    // and old NDJSON files are both fine.
    w.key("counters").begin_object();
    w.key("source").value(snapshot.counter_source);
    w.key("cycles").value(snapshot.cycles);
    w.key("instructions").value(snapshot.instructions);
    w.key("cache_refs").value(snapshot.cache_refs);
    w.key("cache_misses").value(snapshot.cache_misses);
    w.key("stalled_backend").value(snapshot.stalled_backend);
    w.key("ipc_w1s").value(snapshot.ipc_1s);
    w.key("miss_rate_w1s").value(snapshot.miss_rate_1s);
    w.key("stall_frac_w1s").value(snapshot.stall_frac_1s);
    w.end_object();
  }
  w.key("workers").begin_array();
  for (const auto& ws : snapshot.workers) {
    w.begin_object();
    w.key("id").value(ws.id);
    w.key("pictures").value(ws.cell.pictures);
    w.key("tasks").value(ws.cell.tasks);
    w.key("busy_ns").value(ws.cell.busy_ns);
    w.key("sync_ns").value(ws.cell.sync_ns);
    w.key("backpressure_ns").value(ws.cell.backpressure_ns);
    w.key("bytes").value(ws.cell.bytes);
    w.key("concealed").value(ws.cell.concealed);
    w.key("quarantined").value(ws.cell.quarantined);
    w.key("last_latency_ns").value(ws.cell.last_latency_ns);
    w.key("last_progress_ns").value(ws.cell.last_progress_ns);
    w.key("utilization").value(ws.utilization);
    if (!snapshot.counter_source.empty()) {
      w.key("cycles").value(ws.cell.cycles);
      w.key("instructions").value(ws.cell.instructions);
      w.key("cache_misses").value(ws.cell.cache_misses);
    }
    w.end_object();
  }
  w.end_array();
  w.key("alerts").begin_array();
  for (const auto& alert : snapshot.alerts) write_alert_json(w, alert);
  w.end_array();
  w.end_object();
}

std::string prometheus_text(const LiveSnapshot& snapshot) {
  std::ostringstream os;
  os << "# pmp2 live telemetry exposition (" << LiveSnapshot::kSchema
     << ")\n";
  os << "# TYPE pmp2_live_seq counter\n";
  os << "pmp2_live_seq " << snapshot.seq << "\n";
  os << "pmp2_live_t_seconds " << json_double(
            static_cast<double>(snapshot.t_ns) / 1e9) << "\n";
  os << "# TYPE pmp2_pictures_total counter\n";
  os << "pmp2_pictures_total " << snapshot.pictures << "\n";
  os << "pmp2_pictures_displayed " << snapshot.displayed << "\n";
  os << "# TYPE pmp2_queue_depth gauge\n";
  os << "pmp2_queue_depth " << snapshot.queue_depth << "\n";
  os << "pmp2_scan_bytes " << snapshot.scan_bytes << "\n";
  os << "# TYPE pmp2_pics_per_second gauge\n";
  os << "pmp2_pics_per_second{window=\"total\"} "
     << json_double(snapshot.pics_per_s_total) << "\n";
  os << "pmp2_pics_per_second{window=\"1s\"} "
     << json_double(snapshot.pics_per_s_1s) << "\n";
  os << "pmp2_pics_per_second{window=\"10s\"} "
     << json_double(snapshot.pics_per_s_10s) << "\n";
  os << "# TYPE pmp2_frame_latency_ms gauge\n";
  const struct {
    const char* window;
    double p50, p95, p99;
  } rows[] = {
      {"1s", snapshot.p50_1s_ms, snapshot.p95_1s_ms, snapshot.p99_1s_ms},
      {"10s", snapshot.p50_10s_ms, snapshot.p95_10s_ms, snapshot.p99_10s_ms},
      {"total", snapshot.p50_total_ms, snapshot.p95_total_ms,
       snapshot.p99_total_ms},
  };
  for (const auto& row : rows) {
    os << "pmp2_frame_latency_ms{window=\"" << row.window
       << "\",quantile=\"0.5\"} " << json_double(row.p50) << "\n";
    os << "pmp2_frame_latency_ms{window=\"" << row.window
       << "\",quantile=\"0.95\"} " << json_double(row.p95) << "\n";
    os << "pmp2_frame_latency_ms{window=\"" << row.window
       << "\",quantile=\"0.99\"} " << json_double(row.p99) << "\n";
  }
  os << "# TYPE pmp2_stall_ms gauge\n";
  os << "pmp2_stall_ms " << json_double(snapshot.stall_ms) << "\n";
  if (!snapshot.counter_source.empty()) {
    os << "# TYPE pmp2_hw_cycles_total counter\n";
    os << "pmp2_hw_cycles_total{source=\"" << snapshot.counter_source
       << "\"} " << snapshot.cycles << "\n";
    os << "pmp2_hw_instructions_total{source=\"" << snapshot.counter_source
       << "\"} " << snapshot.instructions << "\n";
    os << "pmp2_hw_cache_misses_total{source=\"" << snapshot.counter_source
       << "\"} " << snapshot.cache_misses << "\n";
    os << "# TYPE pmp2_ipc gauge\n";
    os << "pmp2_ipc{window=\"1s\"} " << json_double(snapshot.ipc_1s) << "\n";
    os << "pmp2_cache_miss_rate{window=\"1s\"} "
       << json_double(snapshot.miss_rate_1s) << "\n";
    os << "pmp2_stall_frac{window=\"1s\"} "
       << json_double(snapshot.stall_frac_1s) << "\n";
  }
  os << "# TYPE pmp2_worker_utilization gauge\n";
  for (const auto& ws : snapshot.workers) {
    os << "pmp2_worker_utilization{worker=\"" << ws.id << "\"} "
       << json_double(ws.utilization) << "\n";
    os << "pmp2_worker_pictures{worker=\"" << ws.id << "\"} "
       << ws.cell.pictures << "\n";
    os << "pmp2_worker_queue_wait_ns{worker=\"" << ws.id << "\"} "
       << ws.cell.sync_ns << "\n";
  }
  os << "# TYPE pmp2_alert_active gauge\n";
  for (const auto& alert : snapshot.alerts) {
    os << "pmp2_alert_active{rule=\"" << alert.rule << "\"} "
       << (alert.active() ? 1 : 0) << "\n";
  }
  return os.str();
}

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::out | std::ios::trunc);
    if (!os) return false;
    os.write(content.data(),
             static_cast<std::streamsize>(content.size()));
    if (!os) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

// ---------------------------------------------------------------------------
// NDJSON read side

namespace {

void parse_percentiles(const JsonValue* obj, double& p50, double& p95,
                       double& p99) {
  if (!obj) return;
  p50 = obj->get_double("p50");
  p95 = obj->get_double("p95");
  p99 = obj->get_double("p99");
}

}  // namespace

bool parse_snapshot(std::string_view line, LiveSnapshot& out,
                    std::string* error) {
  JsonValue doc;
  if (!json_parse(line, doc, error)) return false;
  if (!doc.is_object()) {
    if (error) *error = "snapshot line is not a JSON object";
    return false;
  }
  const std::string schema = doc.get_string("schema");
  if (schema != LiveSnapshot::kSchema) {
    if (error) *error = "schema mismatch: '" + schema + "'";
    return false;
  }
  LiveSnapshot snapshot;
  snapshot.seq = static_cast<std::uint64_t>(doc.get_int("seq"));
  snapshot.t_ns = doc.get_int("t_ns");
  snapshot.pictures = doc.get_int("pictures");
  snapshot.displayed = doc.get_int("displayed");
  snapshot.queue_depth = doc.get_int("queue_depth");
  snapshot.scan_bytes = doc.get_int("scan_bytes");
  if (const JsonValue* pps = doc.find("pics_per_s")) {
    snapshot.pics_per_s_total = pps->get_double("total");
    snapshot.pics_per_s_1s = pps->get_double("w1s");
    snapshot.pics_per_s_10s = pps->get_double("w10s");
  }
  if (const JsonValue* lat = doc.find("latency_ms")) {
    parse_percentiles(lat->find("w1s"), snapshot.p50_1s_ms,
                      snapshot.p95_1s_ms, snapshot.p99_1s_ms);
    parse_percentiles(lat->find("w10s"), snapshot.p50_10s_ms,
                      snapshot.p95_10s_ms, snapshot.p99_10s_ms);
    parse_percentiles(lat->find("total"), snapshot.p50_total_ms,
                      snapshot.p95_total_ms, snapshot.p99_total_ms);
  }
  snapshot.stall_ms = doc.get_double("stall_ms", -1.0);
  if (const JsonValue* counters = doc.find("counters")) {
    snapshot.counter_source = counters->get_string("source");
    snapshot.cycles = counters->get_int("cycles");
    snapshot.instructions = counters->get_int("instructions");
    snapshot.cache_refs = counters->get_int("cache_refs");
    snapshot.cache_misses = counters->get_int("cache_misses");
    snapshot.stalled_backend = counters->get_int("stalled_backend");
    snapshot.ipc_1s = counters->get_double("ipc_w1s");
    snapshot.miss_rate_1s = counters->get_double("miss_rate_w1s");
    snapshot.stall_frac_1s = counters->get_double("stall_frac_w1s");
  }
  if (const JsonValue* workers = doc.find("workers");
      workers && workers->is_array()) {
    for (const JsonValue& item : workers->items) {
      WorkerSample ws;
      ws.id = static_cast<int>(item.get_int("id"));
      ws.cell.pictures = item.get_int("pictures");
      ws.cell.tasks = item.get_int("tasks");
      ws.cell.busy_ns = item.get_int("busy_ns");
      ws.cell.sync_ns = item.get_int("sync_ns");
      ws.cell.backpressure_ns = item.get_int("backpressure_ns");
      ws.cell.bytes = item.get_int("bytes");
      ws.cell.concealed = item.get_int("concealed");
      ws.cell.quarantined = item.get_int("quarantined");
      ws.cell.last_latency_ns = item.get_int("last_latency_ns");
      ws.cell.last_progress_ns = item.get_int("last_progress_ns", -1);
      ws.cell.cycles = item.get_int("cycles");
      ws.cell.instructions = item.get_int("instructions");
      ws.cell.cache_misses = item.get_int("cache_misses");
      ws.utilization = item.get_double("utilization");
      snapshot.workers.push_back(std::move(ws));
    }
  }
  if (const JsonValue* alerts = doc.find("alerts");
      alerts && alerts->is_array()) {
    for (const JsonValue& item : alerts->items) {
      Alert alert;
      alert.rule = item.get_string("rule");
      alert.value = item.get_double("value");
      alert.threshold = item.get_double("threshold");
      alert.fired_at_ns = item.get_int("fired_at_ns");
      alert.cleared_at_ns = item.get_int("cleared_at_ns", -1);
      snapshot.alerts.push_back(std::move(alert));
    }
  }
  out = std::move(snapshot);
  return true;
}

}  // namespace pmp2::obs::live
