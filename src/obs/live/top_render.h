// Rendering for pmp2_top: turns one pmp2-live/1 snapshot into a terminal
// frame (per-worker utilization bars, window percentiles, queue depth,
// active alerts). Pure string-out so tests assert on the frame without a
// terminal, and the tool replays captured streams byte-for-byte the same
// way it renders live ones.
#pragma once

#include <string>

#include "obs/live/sampler.h"

namespace pmp2::obs::live {

struct TopOptions {
  int width = 80;       // full frame width (bars scale to fit)
  bool ansi = false;    // color + home/clear escape codes
};

/// An ASCII utilization bar, `width` cells wide, `frac` in [0,1] filled.
[[nodiscard]] std::string utilization_bar(double frac, int width);

/// One full frame for the snapshot (multi-line, trailing newline).
[[nodiscard]] std::string render_frame(const LiveSnapshot& snapshot,
                                       const TopOptions& options = {});

}  // namespace pmp2::obs::live
