#include "obs/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace pmp2::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::get_double(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_double(fallback) : fallback;
}

std::int64_t JsonValue::get_int(std::string_view key,
                                std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_int(fallback) : fallback;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_string(std::move(fallback)) : fallback;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing data after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool fail(const char* message) {
    if (error_) {
      *error_ = std::string(message) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out.kind = JsonValue::Kind::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  /// Appends `cp` as UTF-8.
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape digit");
      }
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (!at_end()) {
      const auto c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (at_end()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00..\uDFFF.
            if (!consume('\\') || !consume('u')) {
              return fail("unpaired high surrogate");
            }
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    consume('-');
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected number");
    }
    if (peek() == '0') {
      ++pos_;  // leading zero: no further integer digits allowed
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected fraction digits");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected exponent digits");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    out.kind = JsonValue::Kind::kNumber;
    // The slice is digits/sign/dot/exp only, so strtod cannot run past
    // `pos_` — but take a bounded copy anyway to stay locale-independent
    // about termination.
    const std::string slice(text_.substr(start, pos_ - start));
    out.number = std::strtod(slice.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  out = JsonValue{};
  return Parser(text, error).run(out);
}

}  // namespace pmp2::obs
