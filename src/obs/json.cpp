#include "obs/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace pmp2::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", byte);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

void JsonWriter::pre_value() {
  assert(!root_done_ && "value after completed root");
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.is_object) {
    assert(have_key_ && "object value requires a preceding key()");
    have_key_ = false;
  } else {
    if (top.has_items) os_ << ',';
    top.has_items = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  os_ << '{';
  stack_.push_back({true, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back().is_object && !have_key_);
  os_ << '}';
  stack_.pop_back();
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  os_ << '[';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && !stack_.back().is_object);
  os_ << ']';
  stack_.pop_back();
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back().is_object && !have_key_);
  Frame& top = stack_.back();
  if (top.has_items) os_ << ',';
  top.has_items = true;
  os_ << '"' << json_escape(k) << "\":";
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  os_ << '"' << json_escape(v) << '"';
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  os_ << (v ? "true" : "false");
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  os_ << v;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  os_ << v;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  os_ << json_double(v);
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  os_ << "null";
  if (stack_.empty()) root_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value_raw(std::string_view raw) {
  pre_value();
  os_ << raw;
  if (stack_.empty()) root_done_ = true;
  return *this;
}

}  // namespace pmp2::obs
