// Counter / histogram registry for decoder run statistics: tasks per kind,
// queue-wait and task-latency distributions (p50/p95/p99), concealed
// slices, bytes decoded.
//
// Counters and histogram buckets are relaxed atomics, so workers record
// concurrently without locks; the registry map itself is mutex-guarded and
// decoders resolve their instruments once before spawning workers. With no
// registry attached the decoders skip every record (null pointer test), the
// same discipline as the tracer.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmp2::obs {

class JsonWriter;

/// Monotonic counter (int64, relaxed).
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram;

/// Plain-value copy of a Histogram's state, the unit of the live-telemetry
/// sliding windows (docs/OBSERVABILITY.md): snapshots of one cumulative
/// histogram taken at successive sample ticks are subtracted into per-tick
/// deltas and re-added over a trailing window, yielding windowed
/// percentiles with the same bucket/interpolation semantics as the live
/// Histogram itself.
struct HistogramSnapshot {
  std::int64_t buckets[64] = {};
  std::int64_t count = 0;
  std::int64_t sum = 0;
  /// Observed range. Exact when captured by Histogram::snapshot(); after
  /// subtract()/add() it is re-derived from the occupied bucket bounds
  /// (exact min/max are not subtractable), which keeps percentile()'s
  /// clamping within one octave of the true range.
  std::int64_t min = 0;
  std::int64_t max = 0;

  /// Merges `other` in (window accumulation); range becomes bucket-bound.
  void add(const HistogramSnapshot& other);

  /// Subtracts an older snapshot of the same histogram, leaving the delta
  /// recorded between the two; range becomes bucket-bound.
  void subtract(const HistogramSnapshot& older);

  [[nodiscard]] double mean() const;

  /// Same algorithm and edge behavior as Histogram::percentile (which
  /// delegates here): bucket scan, linear interpolation, clamp to
  /// [min, max], empty -> 0.
  [[nodiscard]] double percentile(double q) const;

 private:
  /// Recomputes min/max from the lowest/highest occupied bucket bounds.
  void rederive_range();
};

/// Log2-bucketed histogram of non-negative int64 samples (nanoseconds,
/// bytes). 64 power-of-two buckets cover the full range; percentiles
/// interpolate linearly within a bucket, so they are exact to within one
/// octave — plenty for the p50/p95/p99 latency reporting it serves.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index: 0 holds value 0, bucket b holds [2^(b-1), 2^b).
  [[nodiscard]] static int bucket_of(std::int64_t value);
  [[nodiscard]] static std::int64_t bucket_low(int b);   // inclusive
  [[nodiscard]] static std::int64_t bucket_high(int b);  // exclusive

  void record(std::int64_t value);

  /// Consistent-enough copy for delta windows: each field is read once
  /// (relaxed), so a snapshot taken while writers are recording may be
  /// mid-update by a sample or two — the same tolerance every other
  /// concurrent reader of this class already accepts.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t min() const;  // 0 when empty
  [[nodiscard]] std::int64_t max() const;  // 0 when empty
  [[nodiscard]] double mean() const;

  /// Estimated value at quantile `q` (clamped to [0, 1]): finds the bucket
  /// holding the q*count-th sample and interpolates linearly within it,
  /// then clamps to the observed [min, max]. Defined edge behavior:
  ///   * empty histogram   -> 0.0 for every q (matching min()/max()/mean())
  ///   * single sample     -> exactly that sample for every q
  ///   * q = 0 / q = 1     -> min() / max() exactly
  [[nodiscard]] double percentile(double q) const;

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Named counters + histograms. Lookup interns the instrument on first use;
/// dumps iterate in name order (std::map), so output is deterministic for
/// deterministic inputs.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Plain-text dump (one instrument per line) for terminal inspection.
  void write_text(std::ostream& os) const;

  /// Standalone JSON document: {"counters":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;

  /// Same content appended as one value inside an enclosing document.
  void append_json(JsonWriter& w) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pmp2::obs
