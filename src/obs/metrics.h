// Counter / histogram registry for decoder run statistics: tasks per kind,
// queue-wait and task-latency distributions (p50/p95/p99), concealed
// slices, bytes decoded.
//
// Counters and histogram buckets are relaxed atomics, so workers record
// concurrently without locks; the registry map itself is mutex-guarded and
// decoders resolve their instruments once before spawning workers. With no
// registry attached the decoders skip every record (null pointer test), the
// same discipline as the tracer.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pmp2::obs {

class JsonWriter;

/// Monotonic counter (int64, relaxed).
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative int64 samples (nanoseconds,
/// bytes). 64 power-of-two buckets cover the full range; percentiles
/// interpolate linearly within a bucket, so they are exact to within one
/// octave — plenty for the p50/p95/p99 latency reporting it serves.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::int64_t value);

  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t min() const;  // 0 when empty
  [[nodiscard]] std::int64_t max() const;  // 0 when empty
  [[nodiscard]] double mean() const;

  /// Estimated value at quantile `q` (clamped to [0, 1]): finds the bucket
  /// holding the q*count-th sample and interpolates linearly within it,
  /// then clamps to the observed [min, max]. Defined edge behavior:
  ///   * empty histogram   -> 0.0 for every q (matching min()/max()/mean())
  ///   * single sample     -> exactly that sample for every q
  ///   * q = 0 / q = 1     -> min() / max() exactly
  [[nodiscard]] double percentile(double q) const;

 private:
  std::atomic<std::int64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Named counters + histograms. Lookup interns the instrument on first use;
/// dumps iterate in name order (std::map), so output is deterministic for
/// deterministic inputs.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Plain-text dump (one instrument per line) for terminal inspection.
  void write_text(std::ostream& os) const;

  /// Standalone JSON document: {"counters":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;

  /// Same content appended as one value inside an enclosing document.
  void append_json(JsonWriter& w) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pmp2::obs
