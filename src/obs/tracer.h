// Per-worker event tracer for the parallel decoders and the virtual-time
// scheduler simulator.
//
// Each worker (plus the scan/display processes) owns one fixed-capacity
// ring-buffered track and emits closed spans — begin/end timestamp, task
// kind, picture/slice/GOP ids — with no locking on the hot path: a track
// has exactly one writer, and readers only run after the workers have
// joined (or, for the simulator, after the single-threaded run returns).
//
// Null-sink discipline (same as mpeg2::TraceSink): every decoder hook is a
// plain `if (tracer)` pointer test, so an untraced decode pays one
// predictable branch per task and nothing else.
//
// Timestamps are int64 nanoseconds relative to an arbitrary epoch: the real
// decoders use Tracer::now_ns() (wall time since tracer construction); the
// sched simulator feeds its deterministic virtual clock straight in, which
// is what makes two identical sim runs export byte-identical JSON.
//
// The exporter writes the Chrome trace_event format (JSON object with a
// "traceEvents" array of "X" complete events), loadable directly in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/timer.h"

namespace pmp2::obs {

enum class SpanKind : std::uint8_t {
  kScan,       // startcode scan pass
  kGopTask,    // one GOP task (coarse-grained decoder)
  kSliceTask,  // one slice task (fine-grained decoder)
  kPicture,    // one picture inside a GOP task
  kSyncWait,   // blocked, cause unknown (legacy/unclassified)
  kDisplay,    // display-order emission
  kConceal,    // error concealment of a corrupt slice
  // Classified blocked time, the buckets of the analyzer's blocked-time
  // decomposition (docs/ANALYSIS.md):
  kQueueWait,     // consumer side: task queue empty (scan not ahead yet,
                  // or the stream has fewer tasks than workers)
  kBarrierWait,   // blocked on a data dependency / picture barrier
  kBackpressure,  // producer side: bounded queue full, or the open-picture
                  // bound reached (memory backpressure)
};

/// Stable lower-case name ("slice", "wait", "wait.queue", ...) used as the
/// event name prefix and the Chrome "cat" field.
[[nodiscard]] const char* span_kind_name(SpanKind kind);

/// True for the blocked-time kinds (kSyncWait and the classified waits).
[[nodiscard]] bool span_kind_is_wait(SpanKind kind);

/// Binary journal framing (shared with the obs::analysis loader). Fields
/// are written in host byte order; the magic doubles as the format sniffer
/// (a Chrome trace starts with '{').
inline constexpr char kJournalMagic[8] = {'P', 'M', 'P', '2',
                                          'J', 'R', 'N', 'L'};
inline constexpr std::uint32_t kJournalVersion = 1;

/// One closed span. 40 bytes; a track ring of the default capacity holds
/// the most recent ~32k spans per worker (~1.3 MiB).
struct Span {
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::int32_t picture = -1;  // decode-order picture id (-1 = n/a)
  std::int32_t slice = -1;    // slice ordinal within the picture
  std::int32_t gop = -1;      // GOP ordinal within the stream
  SpanKind kind = SpanKind::kSliceTask;
};

/// Fixed-capacity single-writer span ring. On overflow the oldest spans are
/// overwritten (the tail of a run is what post-mortem debugging needs) and
/// the drop is counted.
class TraceTrack {
 public:
  explicit TraceTrack(std::size_t capacity) : capacity_(capacity) {
    ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  }

  void emit(const Span& span) {
    if (ring_.size() < capacity_) {
      ring_.push_back(span);
    } else {
      ring_[static_cast<std::size_t>(emitted_ % capacity_)] = span;
    }
    ++emitted_;
  }

  /// Total spans ever emitted, including overwritten ones.
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return emitted_ > capacity_ ? emitted_ - capacity_ : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Retained spans, oldest first (unwraps the ring).
  [[nodiscard]] std::vector<Span> spans() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::vector<Span> ring_;
  std::size_t capacity_;
  std::uint64_t emitted_ = 0;
  std::string name_;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 15;

  /// `tracks` is fixed at construction: decoders use one per worker plus
  /// one for the scan process (track index == worker count).
  explicit Tracer(int tracks, std::size_t capacity_per_track = kDefaultCapacity);

  [[nodiscard]] int tracks() const { return static_cast<int>(tracks_.size()); }
  [[nodiscard]] TraceTrack& track(int i) {
    return tracks_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const TraceTrack& track(int i) const {
    return tracks_[static_cast<std::size_t>(i)];
  }

  /// Wall-clock nanoseconds since construction (the trace epoch). Safe to
  /// call from any thread.
  [[nodiscard]] std::int64_t now_ns() const { return timer_.elapsed_ns(); }

  /// Records one closed span on `track`. Single writer per track; the
  /// caller supplies both timestamps (wall or virtual).
  void emit(int track, SpanKind kind, std::int64_t begin_ns,
            std::int64_t end_ns, int picture = -1, int slice = -1,
            int gop = -1) {
    Span span;
    span.begin_ns = begin_ns;
    span.end_ns = end_ns;
    span.picture = picture;
    span.slice = slice;
    span.gop = gop;
    span.kind = kind;
    tracks_[static_cast<std::size_t>(track)].emit(span);
  }

  [[nodiscard]] std::uint64_t total_spans() const;
  [[nodiscard]] std::uint64_t total_dropped() const;

  /// Writes the whole trace as a Chrome trace_event JSON object. Output is
  /// a pure function of the recorded spans and track names — byte-identical
  /// across runs when the spans are (the sim determinism guarantee). Drop
  /// accounting is exported per track ("dropped" in each thread_name
  /// metadata event plus a top-level "droppedByTrack" array) and in total
  /// ("droppedSpans").
  void write_chrome_trace(std::ostream& os) const;

  /// Convenience: writes the Chrome JSON to `path`; false on I/O error.
  [[nodiscard]] bool write_chrome_trace_file(const std::string& path) const;

  /// Writes the compact binary span journal (magic "PMP2JRNL", version 1):
  /// the lossless machine-readable twin of the Chrome export, ~29 bytes per
  /// span. Loaded by obs::analysis::load_journal / tools/pmp2_analyze.
  void write_journal(std::ostream& os) const;

  /// Convenience: writes the journal to `path`; false on I/O error.
  [[nodiscard]] bool write_journal_file(const std::string& path) const;

 private:
  std::vector<TraceTrack> tracks_;
  WallTimer timer_;
};

/// RAII span: samples begin at construction, emits at destruction. A null
/// tracer makes both ends no-ops.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, int track, SpanKind kind, int picture = -1,
            int slice = -1, int gop = -1)
      : tracer_(tracer),
        track_(track),
        picture_(picture),
        slice_(slice),
        gop_(gop),
        kind_(kind) {
    if (tracer_) begin_ns_ = tracer_->now_ns();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (tracer_) {
      tracer_->emit(track_, kind_, begin_ns_, tracer_->now_ns(), picture_,
                    slice_, gop_);
    }
  }

 private:
  Tracer* tracer_;
  std::int64_t begin_ns_ = 0;
  int track_;
  int picture_, slice_, gop_;
  SpanKind kind_;
};

}  // namespace pmp2::obs
