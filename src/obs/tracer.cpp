#include "obs/tracer.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/json.h"

namespace pmp2::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kScan:
      return "scan";
    case SpanKind::kGopTask:
      return "gop";
    case SpanKind::kSliceTask:
      return "slice";
    case SpanKind::kPicture:
      return "picture";
    case SpanKind::kSyncWait:
      return "wait";
    case SpanKind::kDisplay:
      return "display";
    case SpanKind::kConceal:
      return "conceal";
    case SpanKind::kQueueWait:
      return "wait.queue";
    case SpanKind::kBarrierWait:
      return "wait.barrier";
    case SpanKind::kBackpressure:
      return "wait.backpressure";
  }
  return "span";
}

bool span_kind_is_wait(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSyncWait:
    case SpanKind::kQueueWait:
    case SpanKind::kBarrierWait:
    case SpanKind::kBackpressure:
      return true;
    default:
      return false;
  }
}

std::vector<Span> TraceTrack::spans() const {
  if (emitted_ <= capacity_) return ring_;
  std::vector<Span> out;
  out.reserve(capacity_);
  const auto head = static_cast<std::size_t>(emitted_ % capacity_);
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

Tracer::Tracer(int tracks, std::size_t capacity_per_track) {
  tracks_.reserve(static_cast<std::size_t>(tracks));
  for (int i = 0; i < tracks; ++i) tracks_.emplace_back(capacity_per_track);
}

std::uint64_t Tracer::total_spans() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t.emitted();
  return n;
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& t : tracks_) n += t.dropped();
  return n;
}

namespace {

/// Nanoseconds as a fixed-point microsecond literal ("12.345"): Chrome's
/// "ts"/"dur" unit is microseconds, and integer math keeps the formatting
/// deterministic.
std::string us_fixed(std::int64_t ns) {
  if (ns < 0) ns = 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

std::string span_name(const Span& span) {
  char buf[64];
  switch (span.kind) {
    case SpanKind::kSliceTask:
      std::snprintf(buf, sizeof buf, "slice p%d s%d", span.picture,
                    span.slice);
      return buf;
    case SpanKind::kGopTask:
      std::snprintf(buf, sizeof buf, "gop %d", span.gop);
      return buf;
    case SpanKind::kPicture:
      std::snprintf(buf, sizeof buf, "picture %d", span.picture);
      return buf;
    case SpanKind::kConceal:
      std::snprintf(buf, sizeof buf, "conceal p%d s%d", span.picture,
                    span.slice);
      return buf;
    default:
      return span_kind_name(span.kind);
  }
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  // Metadata: process name plus one named thread per track.
  w.begin_object();
  w.key("name").value("process_name");
  w.key("ph").value("M");
  w.key("pid").value(0);
  w.key("tid").value(0);
  w.key("args").begin_object().key("name").value("pmp2").end_object();
  w.end_object();
  for (int i = 0; i < tracks(); ++i) {
    const TraceTrack& t = track(i);
    std::string name = t.name();
    if (name.empty()) name = "worker " + std::to_string(i);
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(0);
    w.key("tid").value(i);
    w.key("args")
        .begin_object()
        .key("name")
        .value(name)
        .key("dropped")
        .value(t.dropped())
        .end_object();
    w.end_object();
  }

  for (int i = 0; i < tracks(); ++i) {
    for (const Span& span : track(i).spans()) {
      w.begin_object();
      w.key("name").value(span_name(span));
      w.key("cat").value(span_kind_name(span.kind));
      w.key("ph").value("X");
      w.key("ts").value_raw(us_fixed(span.begin_ns));
      w.key("dur").value_raw(us_fixed(span.end_ns - span.begin_ns));
      w.key("pid").value(0);
      w.key("tid").value(i);
      w.key("args").begin_object();
      if (span.picture >= 0) w.key("picture").value(span.picture);
      if (span.slice >= 0) w.key("slice").value(span.slice);
      if (span.gop >= 0) w.key("gop").value(span.gop);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.key("droppedSpans").value(total_dropped());
  w.key("droppedByTrack").begin_array();
  for (int i = 0; i < tracks(); ++i) w.value(track(i).dropped());
  w.end_array();
  w.end_object();
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

namespace {

template <typename T>
void put_raw(std::ostream& os, T value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

}  // namespace

void Tracer::write_journal(std::ostream& os) const {
  os.write(kJournalMagic, sizeof kJournalMagic);
  put_raw(os, kJournalVersion);
  put_raw(os, static_cast<std::uint32_t>(tracks()));
  for (int i = 0; i < tracks(); ++i) {
    const TraceTrack& t = track(i);
    const std::string& name = t.name();
    put_raw(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    put_raw(os, t.emitted());
    put_raw(os, t.dropped());
    const auto spans = t.spans();
    put_raw(os, static_cast<std::uint64_t>(spans.size()));
    for (const Span& s : spans) {
      put_raw(os, s.begin_ns);
      put_raw(os, s.end_ns);
      put_raw(os, s.picture);
      put_raw(os, s.slice);
      put_raw(os, s.gop);
      put_raw(os, static_cast<std::uint8_t>(s.kind));
    }
  }
}

bool Tracer::write_journal_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_journal(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace pmp2::obs
