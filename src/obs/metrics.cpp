#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <ostream>

#include "obs/json.h"

namespace pmp2::obs {

namespace {

void update_min(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void update_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_of(std::int64_t value) {
  if (value <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(value));
}

std::int64_t Histogram::bucket_low(int b) {
  return b <= 0 ? 0 : std::int64_t{1} << (b - 1);
}

std::int64_t Histogram::bucket_high(int b) {
  return b <= 0 ? 1 : std::int64_t{1} << b;
}

void HistogramSnapshot::rederive_range() {
  min = 0;
  max = 0;
  if (count <= 0) return;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (buckets[b] > 0) {
      min = Histogram::bucket_low(b);
      break;
    }
  }
  for (int b = Histogram::kBuckets - 1; b >= 0; --b) {
    if (buckets[b] > 0) {
      max = Histogram::bucket_high(b) - 1;  // inclusive top of the bucket
      break;
    }
  }
}

void HistogramSnapshot::add(const HistogramSnapshot& other) {
  for (int b = 0; b < Histogram::kBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
  rederive_range();
}

void HistogramSnapshot::subtract(const HistogramSnapshot& older) {
  // Clamped at zero per field: a cumulative histogram only grows, so a
  // negative delta can only come from a torn concurrent read — clamping
  // keeps the window sane (off by at most the in-flight samples).
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    buckets[b] = std::max<std::int64_t>(0, buckets[b] - older.buckets[b]);
  }
  count = std::max<std::int64_t>(0, count - older.count);
  sum = std::max<std::int64_t>(0, sum - older.sum);
  rederive_range();
}

double HistogramSnapshot::mean() const {
  return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
}

double HistogramSnapshot::percentile(double q) const {
  if (count <= 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(count);
  double seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const auto in_bucket = static_cast<double>(buckets[b]);
    if (in_bucket <= 0) continue;
    if (seen + in_bucket >= target) {
      const double frac = in_bucket > 0 ? (target - seen) / in_bucket : 0.0;
      const double lo = static_cast<double>(Histogram::bucket_low(b));
      const double hi = static_cast<double>(Histogram::bucket_high(b));
      double v = lo + frac * (hi - lo);
      // Clamp to the observed range: the top/bottom buckets overshoot it.
      v = std::max(v, static_cast<double>(min));
      v = std::min(v, static_cast<double>(max));
      return v;
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  // First sample seeds min/max; the count_ increment is the publication.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    update_min(min_, value);
    update_max(max_, value);
  }
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0;
}

std::int64_t Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0;
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (int b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  return s;
}

double Histogram::percentile(double q) const {
  return snapshot().percentile(q);
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::write_text(std::ostream& os) const {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << ": count=" << h->count() << " min=" << h->min()
       << " mean=" << json_double(h->mean())
       << " p50=" << json_double(h->percentile(0.50))
       << " p95=" << json_double(h->percentile(0.95))
       << " p99=" << json_double(h->percentile(0.99)) << " max=" << h->max()
       << " sum=" << h->sum() << "\n";
  }
}

void Registry::append_json(JsonWriter& w) const {
  const std::scoped_lock lock(mutex_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("min").value(h->min());
    w.key("mean").value(h->mean());
    w.key("p50").value(h->percentile(0.50));
    w.key("p95").value(h->percentile(0.95));
    w.key("p99").value(h->percentile(0.99));
    w.key("max").value(h->max());
    w.key("sum").value(h->sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void Registry::write_json(std::ostream& os) const {
  JsonWriter w(os);
  append_json(w);
}

}  // namespace pmp2::obs
