#include "obs/report.h"

#include <fstream>
#include <ostream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace pmp2::obs {

void ReportValue::write(JsonWriter& w) const {
  switch (kind_) {
    case Kind::kInt:
      w.value(int_);
      break;
    case Kind::kDouble:
      w.value(double_);
      break;
    case Kind::kBool:
      w.value(bool_);
      break;
    case Kind::kString:
      w.value(string_);
      break;
  }
}

void RunReport::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("tool").value(tool_);
  w.key("description").value(description_);
  w.key("meta").begin_object();
  for (const auto& [key, value] : meta_) {
    w.key(key);
    value.write(w);
  }
  w.end_object();
  w.key("rows").begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (const auto& [key, value] : row.fields_) {
      w.key(key);
      value.write(w);
    }
    w.end_object();
  }
  w.end_array();
  if (!alerts_.empty()) {
    w.key("alerts").begin_array();
    for (const auto& alert : alerts_) {
      w.begin_object();
      w.key("rule").value(alert.rule);
      w.key("value").value(alert.value);
      w.key("threshold").value(alert.threshold);
      w.key("fired_at_ns").value(alert.fired_at_ns);
      w.key("cleared_at_ns").value(alert.cleared_at_ns);
      w.end_object();
    }
    w.end_array();
  }
  if (metrics_) {
    w.key("metrics");
    metrics_->append_json(w);
  }
  w.end_object();
  os << "\n";
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  write_json(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace pmp2::obs
