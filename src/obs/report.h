// Structured JSON run reports: the machine-readable output of the bench
// harnesses and examples (--report-out=...), replacing ad-hoc printf tables
// as the source of record for the EXPERIMENTS.md figures.
//
// Shape:
//   {
//     "tool": "bench_fig6_gop_load_balance",
//     "description": "...",
//     "meta": { ... run-wide configuration ... },
//     "rows": [ { ... one data point ... }, ... ],
//     "metrics": { counters/histograms, when a Registry is attached }
//   }
//
// Field order is insertion order and numbers are formatted
// deterministically, so identical runs serialize byte-identically (no
// timestamps by design — stamp files externally if needed).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace pmp2::obs {

class JsonWriter;
class Registry;

/// Small tagged value for report fields.
class ReportValue {
 public:
  ReportValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  ReportValue(int v) : ReportValue(static_cast<std::int64_t>(v)) {}
  ReportValue(std::uint64_t v)
      : ReportValue(static_cast<std::int64_t>(v)) {}
  ReportValue(double v) : kind_(Kind::kDouble), double_(v) {}
  ReportValue(bool v) : kind_(Kind::kBool), bool_(v) {}
  ReportValue(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  ReportValue(const char* v) : ReportValue(std::string(v)) {}

  void write(JsonWriter& w) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  Kind kind_;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  bool bool_ = false;
  std::string string_;
};

/// One SLO alert surfaced into a run report (the post-mortem record of an
/// in-flight live-telemetry alert; see docs/OBSERVABILITY.md).
struct ReportAlert {
  std::string rule;
  double value = 0;
  double threshold = 0;
  std::int64_t fired_at_ns = 0;
  std::int64_t cleared_at_ns = -1;  // -1 = still active at run end
};

class RunReport {
 public:
  /// Versioned schema tag written as the "schema" field of every report.
  /// Bump the trailing number whenever field meaning changes incompatibly;
  /// tools/bench_check refuses to compare documents with mismatched tags.
  static constexpr const char* kSchema = "pmp2-bench-report/1";
  /// One data point: an ordered list of named fields.
  class Row {
   public:
    Row& set(std::string key, ReportValue value) {
      fields_.emplace_back(std::move(key), std::move(value));
      return *this;
    }

   private:
    friend class RunReport;
    std::vector<std::pair<std::string, ReportValue>> fields_;
  };

  RunReport(std::string tool, std::string description)
      : tool_(std::move(tool)), description_(std::move(description)) {}

  /// Run-wide configuration (workers, resolution, flags...).
  RunReport& set_meta(std::string key, ReportValue value) {
    meta_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Appends a data point; the reference stays valid (deque storage).
  Row& add_row() { return rows_.emplace_back(); }

  /// Records one SLO alert; serialized as a top-level "alerts" array. The
  /// array is omitted entirely when no alert was recorded, so reports from
  /// runs without live SLOs stay byte-identical to earlier versions.
  RunReport& add_alert(ReportAlert alert) {
    alerts_.push_back(std::move(alert));
    return *this;
  }

  [[nodiscard]] std::size_t alerts() const { return alerts_.size(); }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Serializes the registry under "metrics"; the registry must outlive
  /// the report's write calls.
  void attach_metrics(const Registry* registry) { metrics_ = registry; }

  void write_json(std::ostream& os) const;

  /// Writes the JSON document to `path`; false on I/O error.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::string tool_;
  std::string description_;
  std::vector<std::pair<std::string, ReportValue>> meta_;
  std::deque<Row> rows_;
  std::vector<ReportAlert> alerts_;
  const Registry* metrics_ = nullptr;
};

}  // namespace pmp2::obs
