// Minimal streaming JSON writer shared by the observability layer (Chrome
// trace exporter, metrics registry dumps, structured run reports).
//
// Deterministic by construction: no timestamps, no locale, fixed number
// formatting — two writes of the same logical document are byte-identical,
// which the sched-sim trace/report determinism guarantee relies on.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pmp2::obs {

/// Escapes `s` per RFC 8259 (quote, backslash, control characters as \uXXXX
/// or the short forms) without adding the surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double deterministically ("%.12g", with NaN/Inf mapped to null
/// since JSON has no representation for them).
[[nodiscard]] std::string json_double(double value);

/// Emits well-formed compact JSON to an ostream. Usage:
///
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("pictures").value(39);
///   w.key("workers").begin_array();
///   w.value(1.5).value("two");
///   w.end_array();
///   w.end_object();
///
/// Misuse (value without key inside an object, unbalanced end) is a
/// programming error and asserts in debug builds.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value (or
  /// begin_object/begin_array).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& null();

  /// Emits `raw` verbatim as one value — caller guarantees it is valid JSON
  /// (used for pre-formatted fixed-point numbers in the trace exporter).
  JsonWriter& value_raw(std::string_view raw);

  /// True once the root value is complete and all scopes are closed.
  [[nodiscard]] bool done() const { return root_done_ && stack_.empty(); }

 private:
  struct Frame {
    bool is_object = false;
    bool has_items = false;
  };
  void pre_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool have_key_ = false;
  bool root_done_ = false;
};

}  // namespace pmp2::obs
