// Strict recursive-descent JSON reader — the read side of the obs layer's
// JsonWriter. Parses exactly the RFC 8259 grammar into a small value tree;
// used by the trace analyzer (loading Chrome trace_event exports), the
// bench regression checker (loading --report-out documents) and the tests.
//
// Scope: documents the obs layer itself writes (reports, traces, journals'
// JSON siblings) are at most a few MiB, so the tree representation is
// deliberately simple — no SAX interface, no number preservation beyond
// double (ints up to 2^53 round-trip, which covers every field we emit).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pmp2::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Typed accessors with fallbacks (never throw).
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? number : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(number) : fallback;
  }
  [[nodiscard]] std::string as_string(std::string fallback = {}) const {
    return is_string() ? string : std::move(fallback);
  }
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return kind == Kind::kBool ? boolean : fallback;
  }

  /// Convenience: find(key) then the typed accessor's fallback chain.
  [[nodiscard]] double get_double(std::string_view key,
                                  double fallback = 0.0) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback = 0) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback = {}) const;
};

/// Parses `text` into `out`. On failure returns false and, when `error` is
/// non-null, stores a message with the byte offset of the first error.
[[nodiscard]] bool json_parse(std::string_view text, JsonValue& out,
                              std::string* error = nullptr);

}  // namespace pmp2::obs
