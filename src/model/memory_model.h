// The paper's Fig. 9 analytical memory model for the GOP-parallel decoder:
//
//   mem(t) = scan(t) + frames(t)
//
// where scan(t) is the coded bytes the scan process has read ahead of the
// workers and frames(t) is the decoded-picture memory not yet released by
// the (frame-rate-paced) display process. The model is driven by four
// rates — scan rate, per-worker decode rate, worker count and display
// rate — exactly the quantities the paper identifies, and reproduces the
// paper's observation that the 1408x960 / 31-pictures / 11-processor
// configuration exceeds the machine's memory.
#pragma once

#include <cstdint>
#include <vector>

namespace pmp2::model {

struct MemoryModelParams {
  double scan_bytes_per_s = 0;    // scan-process throughput
  double decode_pics_per_s = 0;   // one worker's decode rate
  int workers = 1;
  int gop_size = 13;              // pictures per GOP
  double display_pics_per_s = 30; // display pacing
  std::int64_t frame_bytes = 0;   // decoded picture size
  double coded_bytes_per_pic = 0; // average coded picture size
  int total_pictures = 0;
};

struct MemoryPoint {
  double t_s = 0;
  double scan_bytes = 0;    // scan(t)
  double frame_bytes = 0;   // frames(t)
  [[nodiscard]] double total() const { return scan_bytes + frame_bytes; }
};

class MemoryModel {
 public:
  explicit MemoryModel(const MemoryModelParams& params) : params_(params) {}

  /// Evaluates the model at time t (seconds from decode start).
  [[nodiscard]] MemoryPoint at(double t) const;

  /// Samples the model until all pictures are displayed (or t_max).
  [[nodiscard]] std::vector<MemoryPoint> timeline(double dt,
                                                  double t_max) const;

  /// Peak of mem(t) over the run.
  [[nodiscard]] std::int64_t peak_bytes(double dt = 0.05) const;

  /// Time at which the last picture has been displayed.
  [[nodiscard]] double run_length_s() const;

 private:
  [[nodiscard]] double decoded_at(double t) const;
  [[nodiscard]] double displayed_at(double t) const;
  MemoryModelParams params_;
};

}  // namespace pmp2::model
