#include "model/memory_model.h"

#include <algorithm>
#include <cmath>

namespace pmp2::model {

double MemoryModel::decoded_at(double t) const {
  // Workers decode at P x R_d pictures/sec, but can never outrun the scan
  // process (tasks appear as GOPs are scanned).
  const double by_workers = params_.workers * params_.decode_pics_per_s * t;
  const double scanned_pics =
      params_.coded_bytes_per_pic > 0
          ? params_.scan_bytes_per_s * t / params_.coded_bytes_per_pic
          : static_cast<double>(params_.total_pictures);
  return std::min({by_workers, scanned_pics,
                   static_cast<double>(params_.total_pictures)});
}

double MemoryModel::displayed_at(double t) const {
  // Display emits complete GOPs in order, no faster than the display rate.
  const double complete_prefix =
      std::floor(decoded_at(t) / params_.gop_size) * params_.gop_size;
  return std::min(params_.display_pics_per_s * t, complete_prefix);
}

MemoryPoint MemoryModel::at(double t) const {
  MemoryPoint p;
  p.t_s = t;
  const double decoded = decoded_at(t);
  const double displayed = displayed_at(t);
  const double total = static_cast<double>(params_.total_pictures);

  // scan(t): coded bytes read ahead of decoding.
  const double scanned_bytes =
      std::min(params_.scan_bytes_per_s * t,
               params_.coded_bytes_per_pic * total);
  const double consumed_bytes = decoded * params_.coded_bytes_per_pic;
  p.scan_bytes = std::max(0.0, scanned_bytes - consumed_bytes);

  // frames(t): each active worker owns a full GOP's frame buffers while its
  // task runs (allocation is per GOP), plus the backlog of decoded GOPs the
  // display process has not yet emitted.
  const double n = params_.gop_size;
  const double total_gops = total / n;
  const double scanned_gops =
      params_.coded_bytes_per_pic > 0
          ? std::min(total_gops, params_.scan_bytes_per_s * t /
                                     (params_.coded_bytes_per_pic * n))
          : total_gops;
  const double finished_gops = std::floor(decoded / n);
  const double started_gops =
      std::min({total_gops, scanned_gops, finished_gops + params_.workers});
  const double active_gops = std::max(0.0, started_gops - finished_gops);
  const double backlog_pics = std::max(0.0, finished_gops * n - displayed);
  p.frame_bytes = (active_gops * n + backlog_pics) *
                  static_cast<double>(params_.frame_bytes);
  return p;
}

std::vector<MemoryPoint> MemoryModel::timeline(double dt, double t_max) const {
  std::vector<MemoryPoint> out;
  const double end = std::min(t_max, run_length_s());
  for (double t = 0; t <= end + dt / 2; t += dt) out.push_back(at(t));
  return out;
}

std::int64_t MemoryModel::peak_bytes(double dt) const {
  double peak = 0;
  for (const auto& p : timeline(dt, run_length_s())) {
    peak = std::max(peak, p.total());
  }
  return static_cast<std::int64_t>(peak);
}

double MemoryModel::run_length_s() const {
  // The run ends when the last picture is displayed: decoding takes
  // total / min(P x R_d, scan rate in pics); display adds pacing.
  const double decode_rate =
      std::min(params_.workers * params_.decode_pics_per_s,
               params_.coded_bytes_per_pic > 0
                   ? params_.scan_bytes_per_s / params_.coded_bytes_per_pic
                   : 1e18);
  const double decode_end =
      decode_rate > 0 ? params_.total_pictures / decode_rate : 0;
  const double display_end =
      params_.display_pics_per_s > 0
          ? params_.total_pictures / params_.display_pics_per_s
          : decode_end;
  return std::max(decode_end, display_end);
}

}  // namespace pmp2::model
