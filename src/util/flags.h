// Minimal command-line flag parser shared by the benchmark harnesses and
// example programs.
//
// Syntax: --name=value or --name value; bare --name sets a bool flag true.
// Unrecognized flags are collected so a harness can report them instead of
// silently ignoring typos.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pmp2 {

class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// True if --name was present at all.
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --workers=1,2,4,8.
  [[nodiscard]] std::vector<int> get_int_list(
      const std::string& name, const std::vector<int>& fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Flags seen on the command line but never queried via get_*/has.
  /// Call at the end of main() to warn about typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace pmp2
