// Timing utilities: monotonic wall-clock and per-thread CPU timers.
//
// All parallel-decoder statistics in this library (compute time, sync time,
// queue time) are accumulated with these timers, so they are kept minimal and
// allocation-free.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace pmp2 {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last reset().
  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// Used to separate compute time from time spent blocked on queues and
/// barriers: blocked threads do not accumulate CPU time.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now_ns()) {}

  void reset() { start_ = now_ns(); }

  [[nodiscard]] std::int64_t elapsed_ns() const { return now_ns() - start_; }

  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  static std::int64_t now_ns() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
  std::int64_t start_;
};

/// Accumulates intervals; RAII helper `Scope` adds the enclosed duration.
class TimeAccumulator {
 public:
  class Scope {
   public:
    explicit Scope(TimeAccumulator& acc) : acc_(acc) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { acc_.total_ns_ += timer_.elapsed_ns(); }

   private:
    TimeAccumulator& acc_;
    WallTimer timer_;
  };

  void add_ns(std::int64_t ns) { total_ns_ += ns; }
  [[nodiscard]] std::int64_t total_ns() const { return total_ns_; }
  [[nodiscard]] double total_s() const {
    return static_cast<double>(total_ns_) * 1e-9;
  }
  void reset() { total_ns_ = 0; }

 private:
  std::int64_t total_ns_ = 0;
};

}  // namespace pmp2
