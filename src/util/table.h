// Fixed-width ASCII table printer used by every benchmark harness so the
// reproduced tables/figures print in a consistent, paper-like format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pmp2 {

/// Collects rows of cells and prints them column-aligned.
///
///   Table t({"Picture size", "352x240", "704x480"});
///   t.add_row({"Max pictures/sec", "69.9", "26.6"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision (helper for cell values).
  static std::string fmt(double value, int precision = 2);

  void print(std::ostream& os) const;

  /// Prints as comma-separated values (for scripting/plotting).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "figure" as a labelled data series: one line per x with aligned
/// y columns, suitable for eyeballing curve shape and for CSV capture.
class Series {
 public:
  Series(std::string x_label, std::vector<std::string> y_labels);

  void add_point(double x, std::vector<double> ys);

  void print(std::ostream& os, int precision = 3) const;

 private:
  std::string x_label_;
  std::vector<std::string> y_labels_;
  std::vector<std::pair<double, std::vector<double>>> points_;
};

}  // namespace pmp2
