// Deterministic pseudo-random number generation.
//
// All synthetic workloads (scene textures, property-test inputs, simulated
// task-cost jitter) must be reproducible across runs and platforms, so the
// library uses this fixed xoshiro256** implementation rather than
// std::mt19937 with unspecified seeding or std::uniform_* distributions whose
// algorithms are implementation-defined.
#pragma once

#include <cstdint>

namespace pmp2 {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
/// Deterministic across platforms for a given seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    auto splitmix = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = splitmix();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound) {
    // Lemire's multiply-shift rejection-free reduction (slight bias is
    // irrelevant for workload synthesis; determinism is what matters).
    return static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(next_u64() >> 32) * bound) >> 32);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int32_t next_in(std::int32_t lo, std::int32_t hi) {
    return lo + static_cast<std::int32_t>(
                    next_below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace pmp2
