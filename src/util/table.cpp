#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pmp2 {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " | ";
    }
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (const auto w : widths) os << std::string(w + 2, '-') << "-+";
    os << "\n";
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

Series::Series(std::string x_label, std::vector<std::string> y_labels)
    : x_label_(std::move(x_label)), y_labels_(std::move(y_labels)) {}

void Series::add_point(double x, std::vector<double> ys) {
  ys.resize(y_labels_.size());
  points_.emplace_back(x, std::move(ys));
}

void Series::print(std::ostream& os, int precision) const {
  Table t([&] {
    std::vector<std::string> header{x_label_};
    header.insert(header.end(), y_labels_.begin(), y_labels_.end());
    return header;
  }());
  for (const auto& [x, ys] : points_) {
    std::vector<std::string> row{Table::fmt(x, x == static_cast<int>(x) ? 0 : precision)};
    for (const double y : ys) row.push_back(Table::fmt(y, precision));
    t.add_row(std::move(row));
  }
  t.print(os);
}

}  // namespace pmp2
