// Read-only file mapping for elementary-stream inputs. A decoded stream is
// touched once per pass (the scan) plus once per coded byte (the workers),
// so mmap beats read-into-vector: no up-front copy, no 2x resident cost
// while the copy is in flight, and the page cache is shared across the
// soak/playback processes that open the same stream repeatedly.
//
// Falls back to an ordinary read() into owned memory when mmap is
// unavailable (non-POSIX builds, /proc-style pseudo-files that report zero
// size, or an mmap failure at runtime), so callers never need a second
// code path: `data()` is valid either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pmp2::io {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens and maps `path` read-only. Returns false (and stays invalid)
  /// when the file cannot be opened or read; an mmap failure alone is not
  /// an error — the contents are read into owned memory instead.
  [[nodiscard]] bool open(const std::string& path);

  /// Unmaps/frees; the object can be reused with open().
  void close();

  [[nodiscard]] bool valid() const { return data_ != nullptr || empty_ok_; }
  [[nodiscard]] bool mapped() const { return mapped_; }
  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data_, size_};
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;   // true: data_ is an mmap; false: owned by fallback_
  bool empty_ok_ = false; // open() succeeded on a zero-byte file
  std::vector<std::uint8_t> fallback_;
};

}  // namespace pmp2::io
