#include "io/y4m.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace pmp2::io {

Y4mWriter::Y4mWriter(std::ostream& os, int width, int height, int fps_num,
                     int fps_den)
    : os_(os), width_(width), height_(height) {
  os_ << "YUV4MPEG2 W" << width << " H" << height << " F" << fps_num << ":"
      << fps_den << " Ip A1:1 C420jpeg\n";
}

void Y4mWriter::write(const mpeg2::Frame& frame) {
  os_ << "FRAME\n";
  for (int p = 0; p < 3; ++p) {
    const int w = p == 0 ? width_ : width_ / 2;
    const int h = p == 0 ? height_ : height_ / 2;
    const int stride = frame.stride(p);
    const std::uint8_t* pl = frame.plane(p);
    for (int y = 0; y < h; ++y) {
      os_.write(reinterpret_cast<const char*>(pl + y * stride), w);
    }
  }
  ++frames_;
}

Y4mReader::Y4mReader(std::istream& is) : is_(is) {
  std::string header;
  if (!std::getline(is_, header) || header.rfind("YUV4MPEG2", 0) != 0) {
    return;
  }
  std::istringstream tokens(header.substr(9));
  std::string tok;
  int fn = 30, fd = 1;
  bool c420 = true;  // C420 is the default when the tag is absent
  while (tokens >> tok) {
    switch (tok[0]) {
      case 'W': width_ = std::atoi(tok.c_str() + 1); break;
      case 'H': height_ = std::atoi(tok.c_str() + 1); break;
      case 'F': {
        if (std::sscanf(tok.c_str() + 1, "%d:%d", &fn, &fd) != 2) return;
        break;
      }
      case 'C': c420 = tok.rfind("C420", 0) == 0; break;
      default: break;  // interlacing/aspect tags ignored
    }
  }
  if (width_ <= 0 || height_ <= 0 || !c420 || fd <= 0) return;
  fps_ = static_cast<double>(fn) / fd;
  valid_ = true;
}

mpeg2::FramePtr Y4mReader::read(mpeg2::MemoryTracker* tracker) {
  if (!valid_) return nullptr;
  std::string line;
  if (!std::getline(is_, line) || line.rfind("FRAME", 0) != 0) {
    return nullptr;
  }
  auto frame = std::make_shared<mpeg2::Frame>(width_, height_, tracker);
  for (int p = 0; p < 3; ++p) {
    const int w = p == 0 ? width_ : width_ / 2;
    const int h = p == 0 ? height_ : height_ / 2;
    const int stride = frame->stride(p);
    std::uint8_t* pl = frame->plane(p);
    for (int y = 0; y < h; ++y) {
      is_.read(reinterpret_cast<char*>(pl + y * stride), w);
      if (!is_) return nullptr;
    }
  }
  return frame;
}

}  // namespace pmp2::io
