#include "io/mapped_file.h"

#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PMP2_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pmp2::io {

MappedFile::~MappedFile() { close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      empty_ok_(other.empty_ok_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.empty_ok_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    close();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    empty_ok_ = other.empty_ok_;
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    other.empty_ok_ = false;
  }
  return *this;
}

void MappedFile::close() {
#if PMP2_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  empty_ok_ = false;
  fallback_.clear();
  fallback_.shrink_to_fit();
}

bool MappedFile::open(const std::string& path) {
  close();
#if PMP2_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      if (st.st_size == 0) {
        ::close(fd);
        empty_ok_ = true;
        return true;
      }
      void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        ::close(fd);  // the mapping keeps the file alive
        data_ = static_cast<const std::uint8_t*>(map);
        size_ = static_cast<std::size_t>(st.st_size);
        mapped_ = true;
        return true;
      }
    }
    ::close(fd);
    // Fall through: not a regular file or mmap refused — read it instead.
  } else {
    return false;
  }
#endif
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    fallback_.insert(fallback_.end(), buf, buf + n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) {
    fallback_.clear();
    return false;
  }
  if (fallback_.empty()) {
    empty_ok_ = true;
    return true;
  }
  data_ = fallback_.data();
  size_ = fallback_.size();
  return true;
}

}  // namespace pmp2::io
