#include "io/program_stream.h"

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"

namespace pmp2::io {

namespace {

constexpr std::uint32_t kPackStart = 0x000001BA;
constexpr std::uint32_t kSystemStart = 0x000001BB;
constexpr std::uint32_t kProgramEnd = 0x000001B9;
constexpr std::uint8_t kVideoStreamId = 0xE0;

/// Writes an MPEG-2 pack_header with the given 27 MHz SCR (split into
/// 90 kHz base + 300-tick extension).
void write_pack_header(BitWriter& bw, std::uint64_t scr_27mhz,
                       std::uint32_t mux_rate) {
  const std::uint64_t base = (scr_27mhz / 300) & ((1ull << 33) - 1);
  const std::uint32_t ext = static_cast<std::uint32_t>(scr_27mhz % 300);
  bw.put(kPackStart, 32);
  bw.put(0b01, 2);
  bw.put(static_cast<std::uint32_t>(base >> 30), 3);
  bw.put_bit(1);
  bw.put(static_cast<std::uint32_t>(base >> 15) & 0x7FFF, 15);
  bw.put_bit(1);
  bw.put(static_cast<std::uint32_t>(base) & 0x7FFF, 15);
  bw.put_bit(1);
  bw.put(ext, 9);
  bw.put_bit(1);
  bw.put(mux_rate, 22);
  bw.put_bit(1);
  bw.put_bit(1);
  bw.put(0b11111, 5);  // reserved
  bw.put(0, 3);        // pack_stuffing_length
}

/// Parses a pack_header positioned just after its startcode; returns false
/// on marker errors. Consumes any stuffing bytes.
bool skip_pack_header(BitReader& br) {
  if (br.get(2) != 0b01) return false;
  br.skip(3);
  if (br.get_bit() != 1) return false;
  br.skip(15);
  if (br.get_bit() != 1) return false;
  br.skip(15);
  if (br.get_bit() != 1) return false;
  br.skip(9);
  if (br.get_bit() != 1) return false;
  br.skip(22);
  if (br.get_bit() != 1 || br.get_bit() != 1) return false;
  br.skip(5);
  const int stuffing = static_cast<int>(br.get(3));
  br.skip(8 * stuffing);
  return !br.overrun();
}

}  // namespace

std::vector<std::uint8_t> ps_mux(std::span<const std::uint8_t> elementary,
                                 const PsMuxConfig& config) {
  BitWriter bw;
  std::size_t pos = 0;
  int packet_in_pack = 0;
  std::uint64_t pts_90k = 90'000 / 2;  // arbitrary half-second start offset
  while (pos < elementary.size()) {
    if (packet_in_pack == 0) {
      // SCR: bytes delivered so far at mux_rate x 50 bytes/s, in 27 MHz.
      const double seconds =
          static_cast<double>(pos) / (config.mux_rate * 50.0);
      write_pack_header(bw, static_cast<std::uint64_t>(seconds * 27e6),
                        config.mux_rate);
    }
    packet_in_pack = (packet_in_pack + 1) % config.packets_per_pack;

    const std::size_t chunk =
        std::min(config.pes_payload, elementary.size() - pos);
    // PES header: '10' + flags (PTS on the first packet), header data.
    const bool with_pts = pos == 0;
    const int header_data = with_pts ? 5 : 0;
    bw.put(0x000001, 24);
    bw.put(kVideoStreamId, 8);
    bw.put(static_cast<std::uint32_t>(3 + header_data + chunk), 16);
    bw.put(0b10, 2);
    bw.put(0, 6);  // scrambling, priority, alignment, copyright, original
    bw.put(with_pts ? 0b10 : 0b00, 2);  // PTS_DTS_flags
    bw.put(0, 6);  // ESCR, ES_rate, DSM, additional, CRC, extension
    bw.put(static_cast<std::uint32_t>(header_data), 8);
    if (with_pts) {
      bw.put(0b0010, 4);
      bw.put(static_cast<std::uint32_t>(pts_90k >> 30) & 0x7, 3);
      bw.put_bit(1);
      bw.put(static_cast<std::uint32_t>(pts_90k >> 15) & 0x7FFF, 15);
      bw.put_bit(1);
      bw.put(static_cast<std::uint32_t>(pts_90k) & 0x7FFF, 15);
      bw.put_bit(1);
    }
    for (std::size_t i = 0; i < chunk; ++i) {
      bw.put(elementary[pos + i], 8);
    }
    pos += chunk;
  }
  bw.put(kProgramEnd, 32);
  return bw.take();
}

PsDemuxResult ps_demux(std::span<const std::uint8_t> ps) {
  PsDemuxResult out;
  BitReader br(ps);
  for (;;) {
    if (br.bits_left() < 32) break;
    const std::uint32_t code = br.get(32);
    if (code == kProgramEnd) {
      out.ok = true;
      return out;
    }
    if (code == kPackStart) {
      if (!skip_pack_header(br)) return out;
      ++out.packs;
      continue;
    }
    if (code == kSystemStart) {
      const int len = static_cast<int>(br.get(16));
      br.skip(8 * len);
      continue;
    }
    const std::uint8_t stream_id = static_cast<std::uint8_t>(code & 0xFF);
    if ((code >> 8) == 0x000001 && stream_id >= 0xBC) {
      // A PES packet of some stream.
      const int len = static_cast<int>(br.get(16));
      if (stream_id != kVideoStreamId) {
        br.skip(8 * len);
        continue;
      }
      // MPEG-2 PES header.
      if (br.get(2) != 0b10) return out;
      br.skip(6);
      br.skip(2);  // PTS_DTS_flags (header_data_length covers the payload)
      br.skip(6);
      const int header_data = static_cast<int>(br.get(8));
      br.skip(8 * header_data);
      const int payload = len - 3 - header_data;
      if (payload < 0 || br.overrun()) return out;
      for (int i = 0; i < payload; ++i) {
        out.video.push_back(static_cast<std::uint8_t>(br.get(8)));
      }
      ++out.pes_packets;
      continue;
    }
    return out;  // garbage
  }
  // No explicit end code: accept if we parsed anything.
  out.ok = out.pes_packets > 0;
  return out;
}

bool looks_like_program_stream(std::span<const std::uint8_t> data) {
  return data.size() >= 4 && data[0] == 0x00 && data[1] == 0x00 &&
         data[2] == 0x01 && data[3] == 0xBA;
}

}  // namespace pmp2::io
