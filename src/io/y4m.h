// YUV4MPEG2 (.y4m) reading and writing — the interchange format that makes
// the codec usable with external tools (ffmpeg, mplayer, x264 all speak
// it). 4:2:0 only, matching the codec.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "mpeg2/frame.h"

namespace pmp2::io {

/// Writes a Y4M stream: header on first frame, then FRAME records.
class Y4mWriter {
 public:
  /// `fps_num/fps_den`: frame rate (e.g. 30/1).
  Y4mWriter(std::ostream& os, int width, int height, int fps_num = 30,
            int fps_den = 1);

  /// Writes one frame (display area only; coded padding is stripped).
  void write(const mpeg2::Frame& frame);

  [[nodiscard]] int frames_written() const { return frames_; }

 private:
  std::ostream& os_;
  int width_, height_;
  int frames_ = 0;
};

/// Reads a Y4M stream. Only C420 variants are accepted.
class Y4mReader {
 public:
  explicit Y4mReader(std::istream& is);

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] double fps() const { return fps_; }

  /// Reads the next frame; returns nullptr at end of stream or on error.
  [[nodiscard]] mpeg2::FramePtr read(
      mpeg2::MemoryTracker* tracker = nullptr);

 private:
  std::istream& is_;
  bool valid_ = false;
  int width_ = 0, height_ = 0;
  double fps_ = 30.0;
};

}  // namespace pmp2::io
