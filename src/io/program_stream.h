// Minimal MPEG-2 program-stream (ISO/IEC 13818-1) mux and demux for a
// single video elementary stream — enough to read and write the ".mpg"
// container wrapping the paper's ".m2v" elementary streams.
//
// Mux: packs with SCR + program_mux_rate, one video PES packet (stream id
// 0xE0) per chunk, optional PTS on picture-aligned packets, MPEG_program_end.
// Demux: walks pack/system/PES headers by their length fields (no
// pattern-matching inside payloads, so startcode emulation in the ES is
// harmless) and concatenates the video payloads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pmp2::io {

struct PsMuxConfig {
  /// Payload bytes per PES packet.
  std::size_t pes_payload = 2028;
  /// PES packets per pack.
  int packets_per_pack = 1;
  /// program_mux_rate in 50-byte/s units (22 bits); default ~ 8 Mb/s.
  std::uint32_t mux_rate = 20'000;
};

/// Wraps a video elementary stream into a program stream.
[[nodiscard]] std::vector<std::uint8_t> ps_mux(
    std::span<const std::uint8_t> elementary,
    const PsMuxConfig& config = {});

struct PsDemuxResult {
  bool ok = false;
  std::vector<std::uint8_t> video;  // concatenated stream-0xE0 payloads
  int packs = 0;
  int pes_packets = 0;
};

/// Extracts the video elementary stream from a program stream.
[[nodiscard]] PsDemuxResult ps_demux(std::span<const std::uint8_t> ps);

/// True iff the buffer starts with a pack_start_code (0x000001BA) — the
/// cheap "is this a program stream or an elementary stream?" probe.
[[nodiscard]] bool looks_like_program_stream(
    std::span<const std::uint8_t> data);

}  // namespace pmp2::io
