#include "io/image.h"

#include <ostream>

#include "mpeg2/types.h"

namespace pmp2::io {

std::vector<std::uint8_t> to_rgb(const mpeg2::Frame& frame) {
  const int w = frame.width();
  const int h = frame.height();
  std::vector<std::uint8_t> rgb(static_cast<std::size_t>(w) * h * 3);
  const std::uint8_t* yp = frame.y();
  const std::uint8_t* cbp = frame.cb();
  const std::uint8_t* crp = frame.cr();
  const int ys = frame.y_stride();
  const int cs = frame.c_stride();
  for (int row = 0; row < h; ++row) {
    for (int col = 0; col < w; ++col) {
      // BT.601 studio-range conversion.
      const double y = (yp[row * ys + col] - 16) * (255.0 / 219.0);
      const double cb = crp ? cbp[(row / 2) * cs + col / 2] - 128.0 : 0.0;
      const double cr = crp[(row / 2) * cs + col / 2] - 128.0;
      const int r = static_cast<int>(y + 1.402 * cr + 0.5);
      const int g = static_cast<int>(y - 0.344136 * cb - 0.714136 * cr + 0.5);
      const int b = static_cast<int>(y + 1.772 * cb + 0.5);
      std::uint8_t* px =
          rgb.data() + (static_cast<std::size_t>(row) * w + col) * 3;
      px[0] = mpeg2::clamp_pel(r);
      px[1] = mpeg2::clamp_pel(g);
      px[2] = mpeg2::clamp_pel(b);
    }
  }
  return rgb;
}

void write_ppm(std::ostream& os, const mpeg2::Frame& frame) {
  const auto rgb = to_rgb(frame);
  os << "P6\n" << frame.width() << " " << frame.height() << "\n255\n";
  os.write(reinterpret_cast<const char*>(rgb.data()),
           static_cast<std::streamsize>(rgb.size()));
}

std::vector<std::uint8_t> dither_rgb332(const mpeg2::Frame& frame) {
  // Bayer 4x4 threshold matrix, scaled to the quantization step.
  static constexpr int kBayer[4][4] = {
      {0, 8, 2, 10}, {12, 4, 14, 6}, {3, 11, 1, 9}, {15, 7, 13, 5}};
  const auto rgb = to_rgb(frame);
  const int w = frame.width();
  const int h = frame.height();
  std::vector<std::uint8_t> out(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::uint8_t* px =
          rgb.data() + (static_cast<std::size_t>(y) * w + x) * 3;
      // Classic ordered dither: add a threshold spanning one quantizer
      // step before flooring, so the level mix averages to the input.
      const int t = kBayer[y & 3][x & 3];  // 0..15
      auto q3 = [&](int v) { return (v * 7 + t * 16) / 255; };
      auto q2 = [&](int v) { return (v * 3 + t * 16) / 255; };
      out[static_cast<std::size_t>(y) * w + x] = static_cast<std::uint8_t>(
          (q3(px[0]) << 5) | (q3(px[1]) << 2) | q2(px[2]));
    }
  }
  return out;
}

double mean_luma(const mpeg2::Frame& frame) {
  double sum = 0;
  for (int row = 0; row < frame.height(); ++row) {
    const std::uint8_t* p = frame.y() + row * frame.y_stride();
    for (int col = 0; col < frame.width(); ++col) sum += p[col];
  }
  return sum / (static_cast<double>(frame.width()) * frame.height());
}

}  // namespace pmp2::io
