// Color conversion and still-image export: the "further processing before
// display" the paper mentions (dithering excluded from its measurements,
// provided here for completeness and visual inspection of decoder output).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "mpeg2/frame.h"

namespace pmp2::io {

/// BT.601 YCbCr (studio range) -> interleaved 8-bit RGB of the display
/// area. Chroma is upsampled by pixel replication.
[[nodiscard]] std::vector<std::uint8_t> to_rgb(const mpeg2::Frame& frame);

/// Writes the frame as a binary PPM (P6).
void write_ppm(std::ostream& os, const mpeg2::Frame& frame);

/// Mean luma value of the display area (cheap sanity metric for tests).
[[nodiscard]] double mean_luma(const mpeg2::Frame& frame);

/// Ordered (Bayer 4x4) dithering to RGB332 — the display process's
/// palette-reduction step on 1997-era 8-bit displays (the paper's display
/// process dithers; its measurements exclude the cost, and so do ours).
/// Returns one palette index byte per display pel.
[[nodiscard]] std::vector<std::uint8_t> dither_rgb332(
    const mpeg2::Frame& frame);

/// Expands an RGB332 index back to 24-bit RGB (for inspecting dithers).
constexpr void rgb332_to_rgb(std::uint8_t index, std::uint8_t rgb[3]) {
  rgb[0] = static_cast<std::uint8_t>(((index >> 5) & 7) * 255 / 7);
  rgb[1] = static_cast<std::uint8_t>(((index >> 2) & 7) * 255 / 7);
  rgb[2] = static_cast<std::uint8_t>((index & 3) * 255 / 3);
}

}  // namespace pmp2::io
