#!/usr/bin/env bash
# CI pipeline: tier-1 build + full ctest, the perf smoke label, the obs
# label (observability/analysis unit tests), and an optional ThreadSanitizer
# job over the threaded decoders. Each stage is independently selectable:
#
#   scripts/ci.sh             # tier1 + perfsmoke + obs
#   scripts/ci.sh tier1       # build + full ctest only
#   scripts/ci.sh perfsmoke   # ctest -L perfsmoke
#   scripts/ci.sh obs         # ctest -L obs
#   scripts/ci.sh tsan        # TSan build of the parallel decoder tests
#   scripts/ci.sh ubsan       # UBSan build of the SWAR scanner fuzz tests
#   scripts/ci.sh all         # everything including tsan + ubsan
#
# Build dirs: build/ (tier1, reused), build-tsan/ and build-ubsan/
# (sanitizer jobs).
set -u -o pipefail

STAGE="${1:-default}"
JOBS="${CI_JOBS:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run() { echo "+ $*"; "$@"; }

build_tier1() {
  run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release || return 1
  run cmake --build build -j "$JOBS" || return 1
}

stage_tier1() {
  build_tier1 || return 1
  run ctest --test-dir build --output-on-failure -j "$JOBS"
}

stage_perfsmoke() {
  build_tier1 || return 1
  run ctest --test-dir build --output-on-failure -L perfsmoke
}

stage_obs() {
  build_tier1 || return 1
  run ctest --test-dir build --output-on-failure -L obs -j "$JOBS"
}

stage_tsan() {
  # Dedicated tree: sanitizer flags poison the cache otherwise. Only the
  # threaded targets matter under TSan; the sim and codec are single-thread.
  run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPMP2_SANITIZE=thread || return 1
  run cmake --build build-tsan -j "$JOBS" \
      --target test_parallel test_parallel_stress test_obs || return 1
  run ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'Parallel|Stress|Tracer|Obs'
}

stage_ubsan() {
  # The SWAR scanner does unaligned 8-byte loads (via memcpy, which must
  # stay UBSan-clean) — run the fuzz/oracle tests and the bitstream unit
  # tests under -fsanitize=undefined to prove it.
  run cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPMP2_SANITIZE=undefined || return 1
  run cmake --build build-ubsan -j "$JOBS" \
      --target test_startcode_fuzz test_bitstream || return 1
  run ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
      -R 'StartcodeFuzz|BitReader|BitWriter|Startcode'
}

rc=0
case "$STAGE" in
  tier1)     stage_tier1     || rc=1 ;;
  perfsmoke) stage_perfsmoke || rc=1 ;;
  obs)       stage_obs       || rc=1 ;;
  tsan)      stage_tsan      || rc=1 ;;
  ubsan)     stage_ubsan     || rc=1 ;;
  default)
    stage_tier1 || rc=1
    # tier1 ran the full suite; the labeled stages just prove the labels
    # select a non-empty subset.
    run ctest --test-dir build -L perfsmoke --output-on-failure || rc=1
    run ctest --test-dir build -L obs --output-on-failure -j "$JOBS" || rc=1
    ;;
  all)
    stage_tier1 || rc=1
    run ctest --test-dir build -L perfsmoke --output-on-failure || rc=1
    run ctest --test-dir build -L obs --output-on-failure -j "$JOBS" || rc=1
    stage_tsan || rc=1
    stage_ubsan || rc=1
    ;;
  *)
    echo "ci.sh: unknown stage '$STAGE' (tier1|perfsmoke|obs|tsan|ubsan|all)" >&2
    exit 2 ;;
esac
exit "$rc"
