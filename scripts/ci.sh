#!/usr/bin/env bash
# CI pipeline: tier-1 build + full ctest, the perf smoke label, the obs
# label (observability/analysis unit tests), sanitizer jobs over the
# threaded decoders and the fault-injection/recovery paths, the soak
# fuzzer, the bench regression diff, and a repo hygiene lint. Each stage is
# independently selectable (docs/CI.md):
#
#   scripts/ci.sh              # tier1 + perfsmoke + obs
#   scripts/ci.sh tier1        # build + full ctest only
#   scripts/ci.sh tier1-scalar # full ctest with PMP2_KERNELS=scalar
#   scripts/ci.sh perfsmoke    # ctest -L perfsmoke
#   scripts/ci.sh obs         # ctest -L obs
#   scripts/ci.sh tsan        # TSan build of the parallel decoder + fault tests
#   scripts/ci.sh ubsan       # UBSan build of the SWAR scanner fuzz tests
#   scripts/ci.sh asan        # ASan build of decoder/concealment/fault tests
#   scripts/ci.sh soak        # pmp2_soak fault-injection fuzz (small budget)
#   scripts/ci.sh serve       # DecodeServer gate: loadgen smoke + isolation soak
#   scripts/ci.sh bench       # quick bench suite diffed vs BENCH_parallel.json
#   scripts/ci.sh prof        # counter profiling: probe, unit tests, e2e
#   scripts/ci.sh lint        # repo hygiene (no tracked ignored files)
#   scripts/ci.sh all         # everything
#
# Build dirs: build/ (tier1, reused), build-tsan/, build-ubsan/ and
# build-asan/ (sanitizer jobs poison the object cache otherwise).
#
# Knobs: CI_JOBS (parallelism), CI_SOAK_BUDGET (soak stage time budget,
# default 20s), CI_SERVE_BUDGET (serve stage per-run wall budget in
# seconds, default 120).
set -u -o pipefail

STAGE="${1:-default}"
JOBS="${CI_JOBS:-$(nproc)}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

run() { echo "+ $*"; "$@"; }

build_tier1() {
  run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release || return 1
  run cmake --build build -j "$JOBS" || return 1
}

stage_tier1() {
  build_tier1 || return 1
  run ctest --test-dir build --output-on-failure -j "$JOBS"
}

stage_tier1_scalar() {
  # The full suite again with the kernel dispatch pinned to the scalar
  # backend: proves no test outcome depends on the host's SIMD selection
  # (every checksum, PSNR and conceal byte must be backend-invariant).
  build_tier1 || return 1
  run env PMP2_KERNELS=scalar \
      ctest --test-dir build --output-on-failure -j "$JOBS"
}

# Kernel backends this host can run. AVX2 is probed (CI runners differ),
# never assumed; scalar and SSE2 are x86-64 baseline.
kernel_backends() {
  local backends="scalar sse2"
  if grep -qiw avx2 /proc/cpuinfo 2>/dev/null; then
    backends="$backends avx2"
  else
    echo "ci.sh: host lacks AVX2; skipping avx2 kernel runs" >&2
  fi
  echo "$backends"
}

stage_perfsmoke() {
  build_tier1 || return 1
  run ctest --test-dir build --output-on-failure -L perfsmoke
}

stage_obs() {
  build_tier1 || return 1
  run ctest --test-dir build --output-on-failure -L obs -j "$JOBS"
}

stage_tsan() {
  # Dedicated tree: sanitizer flags poison the cache otherwise. Only the
  # threaded targets matter under TSan; the sim and codec are single-thread.
  # test_fault rides along: quarantine/watchdog recovery exercises the
  # coordinator's error paths under real thread interleavings. test_live
  # holds the seqlock data-race-free claim (TelemetryCell writer storm +
  # sampler thread). test_adaptive covers the hybrid scheduler's
  # work-stealing paths (deque pops, steals, exploded-picture handoffs)
  # under real contention — the threaded AdaptiveDecoder/AdaptiveStress
  # suites only; the 16-stream checksum matrix is stream-content
  # coverage that tier-1 already runs and would dominate this stage's
  # wall time under TSan. test_serve's Server/ServerLifecycle suites put
  # the DecodeServer's session lifecycle (concurrent open, decode,
  # cancel, teardown over one shared pool) under the same lens; the
  # single-threaded Admission/Fairness math stays in tier-1.
  run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPMP2_SANITIZE=thread || return 1
  run cmake --build build-tsan -j "$JOBS" \
      --target test_parallel test_parallel_stress test_obs test_fault \
      test_live test_adaptive test_serve || return 1
  run ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'Parallel|Stress|Tracer|Obs|FaultInjection|GopQuarantine|TelemetryCell|SlidingWindow|LiveSampler|Exporters|AdaptiveDecoder|AdaptiveStress|StealOrder|Server'
}

stage_ubsan() {
  # The SWAR scanner does unaligned 8-byte loads (via memcpy, which must
  # stay UBSan-clean) — run the fuzz/oracle tests and the bitstream unit
  # tests under -fsanitize=undefined to prove it. test_prof rides along:
  # the sampling profiler's SIGPROF handler walks and hashes raw return
  # addresses, exactly the kind of pointer arithmetic UBSan polices.
  run cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPMP2_SANITIZE=undefined || return 1
  run cmake --build build-ubsan -j "$JOBS" \
      --target test_startcode_fuzz test_bitstream test_kernel_equivalence \
      test_prof || return 1
  run ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
      -R 'StartcodeFuzz|BitReader|BitWriter|Startcode|SamplingProfiler|CollapsedStacks' \
      || return 1
  # Kernel equivalence + fuzz once per host-supported backend: the SIMD
  # intrinsics' shifts, widenings and sign tricks must be UBSan-clean for
  # every dispatch choice, not just the CPUID default.
  local backend
  for backend in $(kernel_backends); do
    run env PMP2_KERNELS="$backend" \
        ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" \
        -R 'IdctEquivalence|FormPredictionEquivalence|BackendEquivalence' \
        || return 1
  done
}

stage_asan() {
  # Corrupt bitstreams are exactly where out-of-bounds reads would hide:
  # run the decoder error paths (concealment, fault injection, startcode
  # fuzz) under AddressSanitizer.
  run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPMP2_SANITIZE=address || return 1
  run cmake --build build-asan -j "$JOBS" \
      --target test_concealment test_fault test_startcode_fuzz || return 1
  run ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R 'Concealment|FaultInjection|GopQuarantine|SimFaultModel|StartcodeFuzz'
}

stage_soak() {
  # Deterministic fault-injection fuzz over the Table 1 stream set: exits
  # nonzero on any crash, hang or recovery-invariant violation. Streams are
  # generated into bench_streams/ on first use.
  build_tier1 || return 1
  run build/tools/pmp2_soak --streams bench_streams \
      --budget "${CI_SOAK_BUDGET:-20s}" --seed 1 \
      --report-out=build/soak_report.json
}

stage_serve() {
  # Multi-stream serving gate (docs/SERVING.md). The serve-labeled unit
  # tests (admission math, fairness sim, backpressure, cancel/teardown
  # leak proofs) run first, then two loadgen runs over the Table 1 stream
  # set, each bounded by CI_SERVE_BUDGET seconds of wall clock so a wedged
  # server fails the stage instead of hanging the runner:
  #   1. smoke: 8 concurrent sessions through one shared 4-worker pool;
  #      the report must be a schema-valid pmp2-bench-report/1 document
  #      (proved by merging it through bench_check).
  #   2. isolation soak: 12 sessions with sessions 2 and 5 corrupted;
  #      --verify-isolation asserts every clean session's checksum is
  #      byte-identical to a solo run of the same stream, and the loadgen
  #      itself asserts every frame pool drained (idle == misses).
  build_tier1 || return 1
  local budget="${CI_SERVE_BUDGET:-120}"
  run ctest --test-dir build --output-on-failure -L serve -j "$JOBS" \
      || return 1
  run timeout "$budget" build/tools/pmp2_loadgen --streams bench_streams \
      --sessions 8 --workers 4 \
      --report-out=build/serve_smoke.json || return 1
  run build/tools/bench_check --merge --out=build/serve_smoke_suite.json \
      build/serve_smoke.json || return 1
  run timeout "$budget" build/tools/pmp2_loadgen --streams bench_streams \
      --sessions 12 --workers 4 --corrupt 2,5 --fault-seed 3 \
      --verify-isolation \
      --report-out=build/serve_isolation.json || return 1
  run build/tools/bench_check --merge \
      --out=build/serve_isolation_suite.json build/serve_isolation.json
}

stage_bench() {
  # Regenerate the quick bench suite with the same pinned knobs the
  # committed baseline was produced with and diff against it. Identity and
  # coverage are strict (a vanished row/report fails); metric deltas are
  # advisory — shared CI runners are too noisy for hard timing gates.
  build_tier1 || return 1
  local out="build/BENCH_candidate.json"
  run env BENCH_SCALE=0.25 BENCH_MAX_RES=704 BENCH_NS_PER_UNIT=100 \
      scripts/bench_all.sh build "$out" || return 1
  run build/tools/bench_check BENCH_parallel.json "$out" \
      --advisory-metrics --tolerance=0.25
}

stage_prof() {
  # Hardware-counter profiling layer (docs/OBSERVABILITY.md "Hardware
  # profiling"). The attribution math runs on FakeCounterSource, so the
  # unit tests pass with or without a PMU; the probe just reports which
  # path (perf vs software fallback) the end-to-end run will exercise.
  build_tier1 || return 1
  run build/tools/pmp2_prof --probe || return 1
  run ctest --test-dir build --output-on-failure -j "$JOBS" \
      -R 'FakeCounterSource|CounterSample|ProbeHost|SoftwareCounterSource|PerfCounterSource|StageProfiler|StageScope|ProfJson|ProfText|CollapsedStacks|SamplingProfiler|TelemetryCounters|BenchCompareCounters' \
      || return 1
  # End-to-end: stage counters + sampling profiler on a real playback run,
  # in whichever mode the host supports, then assert both outputs parse.
  run build/examples/parallel_playback --pictures=26 --workers=2 \
      --prof-counters --prof-json-out=build/ci_prof.json \
      --prof-out=build/ci_prof.folded || return 1
  run build/tools/pmp2_prof --check build/ci_prof.folded || return 1
  run build/tools/pmp2_analyze --prof=build/ci_prof.json || return 1
}

stage_lint() {
  # Generated artifacts must not creep back under version control: fail if
  # any tracked file matches a .gitignore pattern.
  local tracked_ignored
  tracked_ignored="$(git ls-files -i -c --exclude-standard)" || return 1
  if [[ -n "$tracked_ignored" ]]; then
    echo "lint: tracked files match .gitignore patterns:" >&2
    echo "$tracked_ignored" >&2
    return 1
  fi
  echo "lint: OK (no tracked ignored files)"
}

rc=0
case "$STAGE" in
  tier1)     stage_tier1     || rc=1 ;;
  tier1-scalar) stage_tier1_scalar || rc=1 ;;
  perfsmoke) stage_perfsmoke || rc=1 ;;
  obs)       stage_obs       || rc=1 ;;
  tsan)      stage_tsan      || rc=1 ;;
  ubsan)     stage_ubsan     || rc=1 ;;
  asan)      stage_asan      || rc=1 ;;
  soak)      stage_soak      || rc=1 ;;
  serve)     stage_serve     || rc=1 ;;
  bench)     stage_bench     || rc=1 ;;
  prof)      stage_prof      || rc=1 ;;
  lint)      stage_lint      || rc=1 ;;
  default)
    stage_tier1 || rc=1
    # tier1 ran the full suite; the labeled stages just prove the labels
    # select a non-empty subset.
    run ctest --test-dir build -L perfsmoke --output-on-failure || rc=1
    run ctest --test-dir build -L obs --output-on-failure -j "$JOBS" || rc=1
    ;;
  all)
    stage_lint || rc=1
    stage_tier1 || rc=1
    stage_tier1_scalar || rc=1
    run ctest --test-dir build -L perfsmoke --output-on-failure || rc=1
    run ctest --test-dir build -L obs --output-on-failure -j "$JOBS" || rc=1
    stage_tsan || rc=1
    stage_ubsan || rc=1
    stage_asan || rc=1
    stage_soak || rc=1
    stage_serve || rc=1
    stage_bench || rc=1
    stage_prof || rc=1
    ;;
  *)
    echo "ci.sh: unknown stage '$STAGE'" \
         "(tier1|tier1-scalar|perfsmoke|obs|tsan|ubsan|asan|soak|serve|bench|prof|lint|all)" >&2
    exit 2 ;;
esac
exit "$rc"
