#!/usr/bin/env bash
# Runs every bench harness with --report-out and aggregates the per-bench
# JSON documents into one schema-versioned suite file (BENCH_parallel.json)
# via `bench_check --merge`. The result is the baseline/candidate input for
# `bench_check BASELINE.json CANDIDATE.json` regression gating (see
# docs/ANALYSIS.md).
#
# Usage:
#   scripts/bench_all.sh [BUILD_DIR] [OUT_JSON]
#
# Defaults: BUILD_DIR=build, OUT_JSON=BENCH_parallel.json. Extra knobs via
# environment:
#   BENCH_SCALE    stream-length multiplier   (default 0.25: quick sweep)
#   BENCH_MAX_RES  largest resolution swept   (default 704)
#   BENCH_NS_PER_UNIT  pinned sim calibration (default 100; makes sim-driven
#                      reports byte-stable across hosts and runs)
set -u -o pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_parallel.json}"
SCALE="${BENCH_SCALE:-0.25}"
MAX_RES="${BENCH_MAX_RES:-704}"
NS_PER_UNIT="${BENCH_NS_PER_UNIT:-100}"

BENCH_DIR="$BUILD_DIR/bench"
CHECK="$BUILD_DIR/tools/bench_check"
if [[ ! -x "$CHECK" ]]; then
  echo "bench_all: $CHECK not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

REPORT_DIR="$(mktemp -d "${TMPDIR:-/tmp}/pmp2_bench.XXXXXX")"
trap 'rm -rf "$REPORT_DIR"' EXIT

# Every harness that emits a pmp2-bench-report/1 document. The shared flags
# are warnings-only where a binary does not consume them.
BENCHES=(
  bench_micro_kernels
  bench_adaptive
  bench_serve
  bench_table1_streams
  bench_table2_scan_rate
  bench_table3_gop_maxfps
  bench_table4_maxfps
  bench_fig5_gop_speedup
  bench_fig6_gop_load_balance
  bench_fig7_ideal_vs_actual
  bench_fig8_gop_memory
  bench_fig9_memory_model
  bench_fig11_slice_speedup
  bench_fig12_sync_ratio
  bench_fig13_linesize
  bench_fig14_working_sets
  bench_fig15_capacity_vs_cold
  bench_ablations
  bench_bitrate_sensitivity
  bench_dash_numa
  bench_interlaced
  bench_live_overhead
  bench_random_access
  bench_slice_granularity
  bench_svm_page_coherence
)

failed=0
reports=()
for bench in "${BENCHES[@]}"; do
  bin="$BENCH_DIR/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "bench_all: SKIP $bench (not built)" >&2
    continue
  fi
  out="$REPORT_DIR/$bench.json"
  log="$REPORT_DIR/$bench.log"
  # bench_micro_kernels times raw kernels (no streams/sims) and rejects the
  # stream-sweep flags rather than warning.
  flags=(--report-out="$out")
  if [[ "$bench" != bench_micro_kernels ]]; then
    flags+=(--scale="$SCALE" --max-res="$MAX_RES" --ns-per-unit="$NS_PER_UNIT")
  fi
  echo "bench_all: running $bench ..."
  if ! "$bin" "${flags[@]}" >"$log" 2>&1; then
    echo "bench_all: FAIL $bench (log: $log)" >&2
    tail -5 "$log" >&2
    failed=1
    continue
  fi
  if [[ -s "$out" ]]; then
    reports+=("$out")
  else
    echo "bench_all: FAIL $bench wrote no report" >&2
    failed=1
  fi
done

if [[ ${#reports[@]} -eq 0 ]]; then
  echo "bench_all: no reports produced" >&2
  exit 1
fi

"$CHECK" --merge --out="$OUT_JSON" "${reports[@]}" || exit 1
echo "bench_all: wrote $OUT_JSON (${#reports[@]} reports, scale=$SCALE," \
     "max-res=$MAX_RES, ns-per-unit=$NS_PER_UNIT)"
exit "$failed"
