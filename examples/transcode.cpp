// Command-line transcoder: the file-level tool a codec release ships.
//
//   ./transcode encode in.y4m out.m2v [--gop=13 --bitrate=5000000 --mpeg1]
//   ./transcode decode in.m2v out.y4m [--workers=N]
//   ./transcode demo   out.y4m        generate a synthetic source clip
//   ./transcode frame  in.m2v out.ppm [--index=0]   export one picture
#include <fstream>
#include <iostream>
#include <span>
#include <thread>
#include <vector>

#include "io/image.h"
#include "io/mapped_file.h"
#include "io/program_stream.h"
#include "io/y4m.h"
#include "mpeg2/decoder.h"
#include "mpeg2/encoder.h"
#include "parallel/slice_parallel.h"
#include "streamgen/scene.h"
#include "util/flags.h"

using namespace pmp2;

namespace {

int cmd_encode(const std::string& in_path, const std::string& out_path,
               const Flags& flags) {
  std::ifstream in(in_path, std::ios::binary);
  io::Y4mReader reader(in);
  if (!reader.valid()) {
    std::cerr << "not a 4:2:0 Y4M file: " << in_path << "\n";
    return 1;
  }
  mpeg2::EncoderConfig cfg;
  cfg.width = reader.width();
  cfg.height = reader.height();
  cfg.gop_size = static_cast<int>(flags.get_int("gop", 13));
  cfg.bit_rate = flags.get_int("bitrate", 5'000'000);
  cfg.mpeg1 = flags.get_bool("mpeg1", false);
  mpeg2::Encoder encoder(cfg);
  int frames = 0;
  while (auto frame = reader.read()) {
    encoder.push_frame(std::move(frame));
    ++frames;
  }
  if (frames == 0) {
    std::cerr << "no frames in " << in_path << "\n";
    return 1;
  }
  auto stream = encoder.finish();
  if (flags.get_bool("ps", false)) {
    stream = io::ps_mux(stream);  // wrap in a program-stream container
  }
  std::ofstream out(out_path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(stream.data()),
            static_cast<std::streamsize>(stream.size()));
  std::cout << "encoded " << frames << " frames -> " << stream.size()
            << " bytes (" << (cfg.mpeg1 ? "MPEG-1" : "MPEG-2")
            << (flags.get_bool("ps", false) ? ", program stream" : "")
            << ")\n";
  return 0;
}

int cmd_decode(const std::string& in_path, const std::string& out_path,
               const Flags& flags) {
  io::MappedFile file;
  if (!file.open(in_path)) {
    std::cerr << "cannot read " << in_path << "\n";
    return 1;
  }
  // Elementary streams decode straight out of the mapping; only the
  // program-stream container needs a demuxed copy.
  std::span<const std::uint8_t> stream = file.bytes();
  std::vector<std::uint8_t> demux_video;
  if (io::looks_like_program_stream(stream)) {
    auto demuxed = io::ps_demux(stream);
    if (!demuxed.ok) {
      std::cerr << "broken program stream: " << in_path << "\n";
      return 1;
    }
    std::cout << "demuxed " << demuxed.pes_packets << " PES packets\n";
    demux_video = std::move(demuxed.video);
    stream = demux_video;
  }
  const auto structure = mpeg2::scan_structure(stream);
  if (!structure.valid) {
    std::cerr << "not an MPEG elementary stream: " << in_path << "\n";
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary);
  io::Y4mWriter writer(out, structure.seq.horizontal_size,
                       structure.seq.vertical_size);
  parallel::SliceDecoderConfig cfg;
  cfg.workers = static_cast<int>(flags.get_int(
      "workers", std::max(1u, std::thread::hardware_concurrency())));
  parallel::SliceParallelDecoder decoder(cfg);
  const auto result = decoder.decode(
      stream, [&](mpeg2::FramePtr f) { writer.write(*f); });
  if (!result.ok) {
    std::cerr << "decode failed\n";
    return 1;
  }
  std::cout << "decoded " << result.pictures << " pictures ("
            << (structure.mpeg1 ? "MPEG-1" : "MPEG-2") << ") at "
            << result.pictures_per_second() << " pics/s -> " << out_path
            << "\n";
  return 0;
}

int cmd_demo(const std::string& out_path, const Flags& flags) {
  streamgen::SceneConfig sc;
  sc.width = static_cast<int>(flags.get_int("width", 352));
  sc.height = static_cast<int>(flags.get_int("height", 240));
  const int pictures = static_cast<int>(flags.get_int("pictures", 30));
  const streamgen::SceneGenerator scene(sc);
  std::ofstream out(out_path, std::ios::binary);
  io::Y4mWriter writer(out, sc.width, sc.height);
  for (int i = 0; i < pictures; ++i) writer.write(*scene.render(i));
  std::cout << "wrote " << pictures << " synthetic frames -> " << out_path
            << "\n";
  return 0;
}

int cmd_frame(const std::string& in_path, const std::string& out_path,
              const Flags& flags) {
  io::MappedFile file;
  if (!file.open(in_path)) {
    std::cerr << "cannot read " << in_path << "\n";
    return 1;
  }
  const std::span<const std::uint8_t> stream = file.bytes();
  const int index = static_cast<int>(flags.get_int("index", 0));
  mpeg2::Decoder dec;
  mpeg2::FramePtr wanted;
  int seen = 0;
  (void)dec.decode_stream(stream, [&](mpeg2::FramePtr f) {
    if (seen++ == index) wanted = std::move(f);
  });
  if (!wanted) {
    std::cerr << "stream has only " << seen << " pictures\n";
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary);
  io::write_ppm(out, *wanted);
  std::cout << "wrote picture " << index << " -> " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto& args = flags.positional();
  if (args.size() >= 3 && args[0] == "encode") {
    return cmd_encode(args[1], args[2], flags);
  }
  if (args.size() >= 3 && args[0] == "decode") {
    return cmd_decode(args[1], args[2], flags);
  }
  if (args.size() >= 2 && args[0] == "demo") {
    return cmd_demo(args[1], flags);
  }
  if (args.size() >= 3 && args[0] == "frame") {
    return cmd_frame(args[1], args[2], flags);
  }
  std::cerr << "usage:\n"
               "  transcode encode in.y4m out.m2v [--gop --bitrate --mpeg1]\n"
               "  transcode decode in.m2v out.y4m [--workers]\n"
               "  transcode demo   out.y4m [--width --height --pictures]\n"
               "  transcode frame  in.m2v out.ppm [--index]\n";
  return 2;
}
