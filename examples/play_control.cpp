// Play-control functions (paper §2, §5.1-§5.2): seek and fast-forward on
// an MPEG-2 stream, comparing the GOP-parallel and slice-parallel decoders'
// random-access latency — the slice decoder's headline advantage besides
// memory.
//
// Seeking splices [sequence header .. first GOP) + [target GOP ..], which
// is exactly what a player does; closed GOPs make the result decodable.
//
//   ./play_control [--width=352 --pictures=52 --gop=13 --workers=N]
#include <iostream>
#include <thread>

#include "mpeg2/decoder.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "streamgen/stream_factory.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pmp2;

namespace {

/// Builds a seek stream: everything before the first GOP (sequence header
/// + extensions) followed by the stream from `gop_index` on.
std::vector<std::uint8_t> splice_at_gop(
    std::span<const std::uint8_t> stream,
    const mpeg2::StreamStructure& structure, std::size_t gop_index) {
  std::vector<std::uint8_t> out(
      stream.begin(),
      stream.begin() + static_cast<std::ptrdiff_t>(structure.gops[0].offset));
  out.insert(out.end(),
             stream.begin() + static_cast<std::ptrdiff_t>(
                                  structure.gops[gop_index].offset),
             stream.end());
  return out;
}

/// Wall time until the first frame pops out of the given decode call.
template <typename DecodeFn>
double first_frame_ms(DecodeFn&& decode) {
  WallTimer timer;
  double first = -1;
  decode([&](mpeg2::FramePtr) {
    if (first < 0) first = timer.elapsed_ns() / 1e6;
  });
  return first;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  streamgen::StreamSpec spec;
  spec.width = static_cast<int>(flags.get_int("width", 352));
  spec.height = spec.width * 240 / 352;
  spec.pictures = static_cast<int>(flags.get_int("pictures", 52));
  spec.gop_size = static_cast<int>(flags.get_int("gop", 13));
  spec.bit_rate = 5'000'000;
  const int workers = static_cast<int>(flags.get_int(
      "workers", std::max(2u, std::thread::hardware_concurrency())));

  std::cout << "Encoding " << spec.pictures << " pictures...\n";
  const auto stream = streamgen::generate_stream(spec);
  const auto structure = mpeg2::scan_structure(stream);
  if (!structure.valid) return 1;

  // --- Seek latency to each GOP boundary ---
  Table t({"Seek to GOP", "GOP decoder first-frame ms",
           "Slice decoder first-frame ms"});
  for (std::size_t g = 0; g < structure.gops.size(); ++g) {
    const auto seek_stream = splice_at_gop(stream, structure, g);
    parallel::GopDecoderConfig gcfg;
    gcfg.workers = workers;
    const double gop_ms = first_frame_ms([&](auto cb) {
      (void)parallel::GopParallelDecoder(gcfg).decode(seek_stream, cb);
    });
    parallel::SliceDecoderConfig scfg;
    scfg.workers = workers;
    const double slice_ms = first_frame_ms([&](auto cb) {
      (void)parallel::SliceParallelDecoder(scfg).decode(seek_stream, cb);
    });
    t.add_row({std::to_string(g), Table::fmt(gop_ms, 2),
               Table::fmt(slice_ms, 2)});
  }
  t.print(std::cout);

  // --- Fast-forward: decode every other GOP ---
  {
    std::vector<std::uint8_t> ff(
        stream.begin(),
        stream.begin() +
            static_cast<std::ptrdiff_t>(structure.gops[0].offset));
    for (std::size_t g = 0; g < structure.gops.size(); g += 2) {
      ff.insert(ff.end(),
                stream.begin() +
                    static_cast<std::ptrdiff_t>(structure.gops[g].offset),
                stream.begin() + static_cast<std::ptrdiff_t>(
                                     structure.gops[g].end_offset));
    }
    parallel::SliceDecoderConfig scfg;
    scfg.workers = workers;
    int frames = 0;
    const auto r = parallel::SliceParallelDecoder(scfg).decode(
        ff, [&](mpeg2::FramePtr) { ++frames; });
    std::cout << "\nFast-forward (every other GOP): decoded " << frames
              << " of " << structure.total_pictures() << " pictures, ok="
              << r.ok << "\n";
  }
  std::cout << "\nPaper context: closed GOPs are what make these splices"
               " decodable; the GOP decoder needs one worker to chew"
               " through the landing GOP while the slice decoder spreads"
               " the landing picture across all workers.\n";
  return 0;
}
