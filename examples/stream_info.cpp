// Stream inspector: dumps the structure of an MPEG-2 elementary stream —
// sequence parameters, GOPs, picture types/sizes, slices — the same view
// the parallel decoders' scan process builds.
//
//   ./stream_info clip.m2v          inspect a file
//   ./stream_info                   inspect a freshly generated demo stream
#include <fstream>
#include <iostream>

#include "bitstream/startcode.h"
#include "mpeg2/decoder.h"
#include "streamgen/stream_factory.h"
#include "util/flags.h"
#include "util/table.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  std::vector<std::uint8_t> stream;
  if (!flags.positional().empty()) {
    std::ifstream in(flags.positional()[0], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << flags.positional()[0] << "\n";
      return 1;
    }
    stream.assign(std::istreambuf_iterator<char>(in), {});
  } else {
    streamgen::StreamSpec spec;
    spec.width = 352;
    spec.height = 240;
    spec.pictures = 26;
    spec.gop_size = 13;
    std::cout << "(no file given; generating a demo stream)\n";
    stream = streamgen::generate_stream(spec);
  }

  const mpeg2::StreamStructure s = mpeg2::scan_structure(stream);
  if (!s.valid) {
    std::cerr << "not a valid MPEG-2 elementary stream\n";
    return 1;
  }

  std::cout << "Sequence: " << s.seq.horizontal_size << "x"
            << s.seq.vertical_size << " @ " << s.seq.frame_rate()
            << " pics/s, " << s.seq.bit_rate / 1e6 << " Mb/s coded rate, "
            << (s.ext.progressive_sequence ? "progressive" : "interlaced")
            << ", profile/level 0x" << std::hex << s.ext.profile_and_level
            << std::dec << "\n";
  std::cout << "Macroblocks: " << s.mb_width() << "x" << s.mb_height()
            << " (" << s.mb_width() * s.mb_height() << " per picture)\n";
  std::cout << "Stream: " << stream.size() << " bytes, " << s.gops.size()
            << " GOPs, " << s.total_pictures() << " pictures\n\n";

  Table t({"GOP", "Offset", "Closed", "Pictures", "Coded order",
           "KB", "Slices/pic"});
  for (std::size_t g = 0; g < s.gops.size(); ++g) {
    const auto& gop = s.gops[g];
    std::string order;
    for (const auto& pic : gop.pictures) {
      order += mpeg2::picture_type_char(pic.type);
    }
    if (order.size() > 20) order = order.substr(0, 20) + "...";
    t.add_row({std::to_string(g), std::to_string(gop.offset),
               gop.closed ? "yes" : "no",
               std::to_string(gop.pictures.size()), order,
               Table::fmt((gop.end_offset - gop.offset) / 1024.0, 1),
               gop.pictures.empty()
                   ? "-"
                   : std::to_string(gop.pictures[0].slices.size())});
  }
  t.print(std::cout);

  // Startcode census.
  std::size_t counts[256] = {};
  for (const auto& sc : scan_all_startcodes(stream)) ++counts[sc.code];
  std::cout << "\nStartcode census:\n";
  std::size_t slices = 0;
  for (int c = 0; c < 256; ++c) {
    if (!counts[c]) continue;
    if (is_slice_code(static_cast<std::uint8_t>(c))) {
      slices += counts[c];
      continue;
    }
    std::cout << "  " << startcode_name(static_cast<std::uint8_t>(c)) << ": "
              << counts[c] << "\n";
  }
  std::cout << "  slice: " << slices << "\n";
  return 0;
}
