// Quickstart: encode a short synthetic clip to an MPEG-2 elementary
// stream, decode it back, and check reconstruction quality.
//
//   ./quickstart [--width=352 --height=240 --pictures=26 --gop=13
//                 --bitrate=5000000 --out=clip.m2v]
#include <fstream>
#include <iostream>

#include "mpeg2/decoder.h"
#include "mpeg2/encoder.h"
#include "streamgen/scene.h"
#include "util/flags.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int width = static_cast<int>(flags.get_int("width", 352));
  const int height = static_cast<int>(flags.get_int("height", 240));
  const int pictures = static_cast<int>(flags.get_int("pictures", 26));
  const int gop = static_cast<int>(flags.get_int("gop", 13));

  // 1. Produce source pictures (any 4:2:0 frames work; here: the synthetic
  //    panning-garden scene).
  streamgen::SceneConfig scene_cfg;
  scene_cfg.width = width;
  scene_cfg.height = height;
  const streamgen::SceneGenerator scene(scene_cfg);

  // 2. Encode.
  mpeg2::EncoderConfig enc_cfg;
  enc_cfg.width = width;
  enc_cfg.height = height;
  enc_cfg.gop_size = gop;
  enc_cfg.bit_rate = flags.get_int("bitrate", 5'000'000);
  mpeg2::Encoder encoder(enc_cfg);
  for (int i = 0; i < pictures; ++i) encoder.push_frame(scene.render(i));
  const std::vector<std::uint8_t> stream = encoder.finish();

  std::cout << "Encoded " << pictures << " pictures (" << width << "x"
            << height << ", GOP " << gop << ") into " << stream.size()
            << " bytes (" << stream.size() * 8.0 * 30 / pictures / 1e6
            << " Mb/s)\n";
  const auto& st = encoder.stats();
  std::cout << "  I/P/B pictures: " << st.pictures_by_type[1] << "/"
            << st.pictures_by_type[2] << "/" << st.pictures_by_type[3]
            << ", intra/inter/skipped MBs: " << st.intra_mbs << "/"
            << st.inter_mbs << "/" << st.skipped_mbs << "\n";

  if (flags.has("out")) {
    const std::string path = flags.get_string("out", "clip.m2v");
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(stream.data()),
              static_cast<std::streamsize>(stream.size()));
    std::cout << "  wrote " << path << "\n";
  }

  // 3. Decode and compare against the source.
  mpeg2::Decoder decoder;
  const mpeg2::DecodedStream decoded = decoder.decode(stream);
  if (!decoded.ok ||
      decoded.frames.size() != static_cast<std::size_t>(pictures)) {
    std::cerr << "decode failed\n";
    return 1;
  }
  double min_psnr = 1e9, sum_psnr = 0;
  for (int i = 0; i < pictures; ++i) {
    const auto src = scene.render(i);
    const double p = mpeg2::psnr_y(*src, *decoded.frames[i]);
    min_psnr = std::min(min_psnr, p);
    sum_psnr += p;
  }
  std::cout << "Decoded " << decoded.frames.size()
            << " pictures in display order; luma PSNR avg "
            << sum_psnr / pictures << " dB, min " << min_psnr << " dB\n";
  std::cout << "Decoder work: " << decoded.work.macroblocks
            << " macroblocks, " << decoded.work.coefficients
            << " coefficients, " << decoded.work.mc_blocks
            << " motion-compensated blocks\n";
  return min_psnr > 20.0 ? 0 : 1;
}
