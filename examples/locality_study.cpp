// Locality study (paper §5.3 in miniature): generate a decode trace and run
// it through the cache simulator at a few geometries, printing the miss
// breakdown — a ready-made template for exploring other cache designs with
// the library.
//
//   ./locality_study [--width=352 --pictures=13 --procs=4
//                     --cache-kb=64 --line=64 --assoc=2]
#include <iostream>

#include "simcache/cache.h"
#include "simcache/trace_gen.h"
#include "streamgen/stream_factory.h"
#include "util/flags.h"
#include "util/table.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  streamgen::StreamSpec spec;
  spec.width = static_cast<int>(flags.get_int("width", 352));
  spec.height = spec.width * 240 / 352;
  spec.pictures = static_cast<int>(flags.get_int("pictures", 13));
  spec.gop_size = 13;
  spec.bit_rate = 5'000'000;
  const int procs = static_cast<int>(flags.get_int("procs", 4));

  std::cout << "Encoding " << spec.pictures << " pictures at " << spec.width
            << "x" << spec.height << " and tracing a " << procs
            << "-processor slice-parallel decode...\n";
  const auto stream = streamgen::generate_stream(spec);

  simcache::CacheConfig cfg;
  cfg.size_bytes = flags.get_int("cache-kb", 64) << 10;
  cfg.line_bytes = static_cast<int>(flags.get_int("line", 64));
  cfg.associativity = static_cast<int>(flags.get_int("assoc", 2));
  simcache::MultiCacheSim sim(procs, cfg);
  if (!simcache::generate_decode_trace(stream, procs, sim)) {
    std::cerr << "trace generation failed\n";
    return 1;
  }

  std::cout << "Cache: " << (cfg.size_bytes >> 10) << " KB, "
            << cfg.line_bytes << "-byte lines, "
            << (cfg.associativity == 0
                    ? std::string("fully associative")
                    : std::to_string(cfg.associativity) + "-way")
            << ", MSI snooping coherence\n\n";

  Table t({"Proc", "Reads", "Read miss %", "Cold", "Capacity", "Conflict",
           "True share", "False share"});
  for (int p = 0; p < procs; ++p) {
    const auto& s = sim.stats(p);
    t.add_row({std::to_string(p), std::to_string(s.reads),
               Table::fmt(100.0 * s.read_miss_rate(), 3),
               std::to_string(s.read_cold), std::to_string(s.read_capacity),
               std::to_string(s.read_conflict),
               std::to_string(s.true_sharing),
               std::to_string(s.false_sharing)});
  }
  const auto total = sim.total_stats();
  t.add_row({"all", std::to_string(total.reads),
             Table::fmt(100.0 * total.read_miss_rate(), 3),
             std::to_string(total.read_cold),
             std::to_string(total.read_capacity),
             std::to_string(total.read_conflict),
             std::to_string(total.true_sharing),
             std::to_string(total.false_sharing)});
  t.print(std::cout);

  std::cout << "\nThings to try (as in the paper's §5.3): sweep --line to"
               " see spatial locality (miss rate halves per doubling);"
               " sweep --cache-kb to find the macroblock-sized working set;"
               " raise --procs to see that sharing misses stay far below"
               " cold misses.\n";
  return 0;
}
