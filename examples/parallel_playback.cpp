// Real-time playback scenario (the paper's motivating application): decode
// a stream with the sequential decoder, the GOP-parallel decoder, both
// slice-parallel decoders and the adaptive hybrid, report pictures/sec
// against the 30 pics/s real-time bar, and verify all five outputs are
// bit-identical. Exits nonzero if any decode fails or diverges from the
// sequential reference.
//
//   ./parallel_playback [--width=352 --pictures=52 --gop=13 --workers=N]
//                       [--stream=in.m2v]
//                       [--trace-out=trace.json] [--journal-out=run.journal]
//                       [--trace-decoder=gop|slice-simple|slice-improved
//                                       |adaptive]
//                       [--report-out=report.json] [--metrics] [--analyze]
//                       [--live-out=live.ndjson] [--live-interval-ms=250]
//                       [--prom-out=live.prom] [--watchdog-ms=N]
//                       [--slo=latency_p99_ms=X,min_pics_s=Y,max_stall_ms=Z]
//                       [--inject-stall-ms=N]
//                       [--prof-counters] [--prof-json-out=run.prof.json]
//                       [--prof-out=run.folded] [--prof-interval-us=997]
//
// --trace-out captures a Chrome trace_event timeline (open in Perfetto /
// chrome://tracing) of the decoder named by --trace-decoder; --journal-out
// writes the same spans as a compact binary journal for tools/pmp2_analyze;
// --analyze runs the trace analyzer in-process and prints its report
// (docs/ANALYSIS.md); --report-out writes the table as a structured JSON
// run report with the counter registry attached; --metrics dumps the
// registry as text to stdout.
//
// --live-out streams one pmp2-live/1 NDJSON snapshot per sampling tick
// while the parallel decoders run (watch with tools/pmp2_top); --prom-out
// keeps a Prometheus-style exposition file atomically refreshed; --slo
// arms in-flight alert rules (raised on stderr as they fire, and recorded
// under "alerts" in the report). All three parallel decoders publish into
// one telemetry surface, so the stream covers the whole playback run.
// --watchdog-ms arms the decoders' hang watchdogs; a hung run exits
// nonzero with the watchdog's last-known-state evidence on stderr.
// --inject-stall-ms stalls the GOP decoder's frame consumer once,
// mid-stream, for N ms — a fault hook to watch the max_stall_ms SLO fire
// (and clear) on a real pipeline.
//
// --prof-counters attributes hardware counters (or the software fallback
// when perf is unavailable) per pipeline stage and prints the paper-§7
// ideal-vs-memory-stall split; --prof-json-out writes the pmp2-prof/1
// summary for pmp2_analyze --prof. --prof-out runs the in-process
// sampling profiler across the parallel decodes and writes collapsed
// stacks (flamegraph "folded" format; inspect with tools/pmp2_prof).
// --stream=in.m2v plays a file-backed elementary stream (memory-mapped;
// read fallback) instead of encoding a synthetic one.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "io/mapped_file.h"
#include "mpeg2/decoder.h"
#include "mpeg2/kernels/kernels.h"
#include "obs/analysis/analyzer.h"
#include "obs/analysis/timeline.h"
#include "obs/live/sampler.h"
#include "obs/live/telemetry.h"
#include "obs/metrics.h"
#include "obs/prof/sampling.h"
#include "obs/prof/stage_prof.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "parallel/adaptive/adaptive_decoder.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "streamgen/stream_factory.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  streamgen::StreamSpec spec;
  spec.width = static_cast<int>(flags.get_int("width", 352));
  spec.height = static_cast<int>(
      flags.get_int("height", spec.width * 240 / 352));
  spec.pictures = static_cast<int>(flags.get_int("pictures", 52));
  spec.gop_size = static_cast<int>(flags.get_int("gop", 13));
  spec.bit_rate = flags.get_int("bitrate", 5'000'000);
  const int workers = static_cast<int>(flags.get_int(
      "workers", std::max(2u, std::thread::hardware_concurrency())));
  const std::string trace_out = flags.get_string("trace-out", "");
  const std::string journal_out = flags.get_string("journal-out", "");
  const std::string trace_decoder =
      flags.get_string("trace-decoder", "slice-improved");
  const std::string report_out = flags.get_string("report-out", "");
  const bool dump_metrics = flags.get_bool("metrics", false);
  const bool analyze_trace = flags.get_bool("analyze", false);
  const std::string live_out = flags.get_string("live-out", "");
  const std::string prom_out = flags.get_string("prom-out", "");
  const std::int64_t live_interval_ms =
      flags.get_int("live-interval-ms", 250);
  const std::string slo_text = flags.get_string("slo", "");
  const std::int64_t watchdog_ms = flags.get_int("watchdog-ms", 0);
  const std::string prof_json_out = flags.get_string("prof-json-out", "");
  const bool prof_counters =
      flags.get_bool("prof-counters", false) || !prof_json_out.empty();
  const std::string prof_out = flags.get_string("prof-out", "");
  const std::int64_t prof_interval_us =
      flags.get_int("prof-interval-us", 997);

  // --kernels=scalar|sse2|avx2 forces the kernel backend (same values as
  // the PMP2_KERNELS env override); the default is the CPUID selection.
  const std::string kernels_flag = flags.get_string("kernels", "");
  if (!kernels_flag.empty()) {
    mpeg2::kernels::Backend kb;
    if (!mpeg2::kernels::parse_backend(kernels_flag, kb) ||
        !mpeg2::kernels::set_backend(kb)) {
      std::cerr << "error: --kernels=" << kernels_flag
                << " unknown or unavailable (have:";
      for (const auto b : mpeg2::kernels::available_backends()) {
        std::cerr << " " << mpeg2::kernels::backend_name(b);
      }
      std::cerr << ")\n";
      return 2;
    }
  }

  obs::live::SloRules slo;
  if (!slo_text.empty()) {
    std::string slo_error;
    if (!obs::live::SloRules::parse(slo_text, slo, &slo_error)) {
      std::cerr << "error: bad --slo: " << slo_error << "\n";
      return 2;
    }
  }

  const std::string stream_path = flags.get_string("stream", "");
  io::MappedFile stream_file;
  std::vector<std::uint8_t> generated;
  std::span<const std::uint8_t> stream;
  if (!stream_path.empty()) {
    if (!stream_file.open(stream_path) || stream_file.size() == 0) {
      std::cerr << "error: cannot read --stream=" << stream_path << "\n";
      return 2;
    }
    stream = stream_file.bytes();
    const auto structure = mpeg2::scan_structure(stream);
    if (!structure.valid) {
      std::cerr << "error: not an MPEG elementary stream: " << stream_path
                << "\n";
      return 2;
    }
    spec.width = structure.seq.horizontal_size;
    spec.height = structure.seq.vertical_size;
    std::cout << (stream_file.mapped() ? "Mapped " : "Read ")
              << stream.size() << " bytes from " << stream_path << " ("
              << spec.width << "x" << spec.height << ")...\n";
  } else {
    std::cout << "Encoding " << spec.pictures << " pictures at "
              << spec.width << "x" << spec.height << "...\n";
    generated = streamgen::generate_stream(spec);
    stream = generated;
  }

  // Track `workers` is the scan process; tracks [0, workers) are workers.
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty() || !journal_out.empty() || analyze_trace) {
    tracer = std::make_unique<obs::Tracer>(workers + 1);
    tracer->track(workers).set_name("scan");
  }
  obs::Registry metrics;

  // One telemetry surface shared by all three parallel decoders (they run
  // back to back on the same worker indices), so --live-out streams the
  // whole playback run and the final snapshot's picture total matches the
  // sum over the report's parallel rows.
  std::unique_ptr<obs::live::LiveTelemetry> live;
  std::unique_ptr<obs::live::LiveSampler> sampler;
  if (!live_out.empty() || !prom_out.empty() || slo.any()) {
    live = std::make_unique<obs::live::LiveTelemetry>(workers);
    obs::live::LiveSampler::Options opt;
    opt.interval_ms = live_interval_ms;
    opt.slo = slo;
    opt.ndjson_path = live_out;
    opt.prometheus_path = prom_out;
    opt.on_alert = [](const obs::live::Alert& alert, bool fired) {
      std::cerr << "live-alert " << (fired ? "FIRED" : "cleared") << ": "
                << alert.rule << " value=" << alert.value
                << " threshold=" << alert.threshold << "\n";
    };
    sampler = std::make_unique<obs::live::LiveSampler>(*live, opt);
    sampler->start();
  }

  // Host counter capability is identity metadata whether or not profiling
  // runs: bench_check must never compare counter columns across
  // differently-capable hosts (docs/OBSERVABILITY.md).
  const obs::prof::HostProfile host = obs::prof::probe_host();

  // Slot `workers` is the scan process, like tracer track `workers`.
  std::unique_ptr<obs::prof::StageProfiler> prof;
  if (prof_counters) {
    prof = std::make_unique<obs::prof::StageProfiler>(
        obs::prof::make_counter_source(), workers + 1);
    if (live) live->set_counter_source(prof->source_name(), prof->mask());
  }

  obs::prof::SamplingProfiler stack_sampler;
  if (!prof_out.empty()) {
    obs::prof::SamplingOptions sopt;
    sopt.interval_us = static_cast<int>(prof_interval_us);
    if (!stack_sampler.start(sopt)) {
      std::cerr << "error: sampling profiler failed to start\n";
      return 2;
    }
  }

  Table t({"Decoder", "Workers", "Pictures/s", "Real-time (30/s)?",
           "Sync time %", "Output"});
  obs::RunReport report("parallel_playback",
                        "Playback of all decoders vs the real-time bar");
  report.set_meta("width", spec.width)
      .set_meta("height", spec.height)
      .set_meta("pictures", spec.pictures)
      .set_meta("gop_size", spec.gop_size)
      .set_meta("workers", workers)
      .set_meta("kernels_backend", mpeg2::kernels::active().name)
      .set_meta("cpu_features", mpeg2::kernels::cpu_features())
      .set_meta("kernel_release", host.kernel_release)
      .set_meta("perf_event_paranoid",
                static_cast<std::int64_t>(host.perf_event_paranoid))
      .set_meta("counter_source", host.source)
      .set_meta("counters_available", host.hw_available);
  report.attach_metrics(&metrics);

  // Sequential reference.
  std::uint64_t want = 0;
  {
    mpeg2::Decoder dec;
    WallTimer timer;
    int frames = 0;
    const auto st = dec.decode_stream(stream, [&](mpeg2::FramePtr f) {
      want = parallel::chain_frame_checksum(want, *f);
      ++frames;
    });
    const double pps = frames / timer.elapsed_s();
    if (!st.ok) {
      std::cerr << "sequential decode failed\n";
      return 1;
    }
    if (!stream_path.empty()) {
      spec.pictures = frames;  // file-backed runs learn the count here
      report.set_meta("pictures", frames);
    }
    t.add_row({"sequential", "1", Table::fmt(pps, 1),
               pps >= 30 ? "yes" : "no", "-", "reference"});
    report.add_row()
        .set("decoder", "sequential")
        .set("workers", 1)
        .set("pictures_per_second", pps)
        .set("bit_exact", true);
  }
  // The chained output checksum is the cross-backend identity anchor:
  // runs under PMP2_KERNELS=scalar, sse2 and avx2 must agree on it to the
  // byte (the kernel backends are bit-exact, not merely close).
  report.set_meta("stream_checksum", want);
  std::cout << "sequential checksum: 0x" << std::hex << want << std::dec
            << " (kernels: " << mpeg2::kernels::active().name << ")\n";

  int divergences = 0;
  int hangs = 0;
  auto record = [&](const char* name,
                    const parallel::RunResult& r) -> obs::RunReport::Row& {
    const auto load = parallel::summarize_load(r);
    const bool bit_exact = r.ok && r.checksum == want;
    if (!bit_exact) ++divergences;
    if (r.hung) {
      ++hangs;
      std::cerr << "error: " << name << " " << r.hang.to_string() << "\n";
    }
    const double pps = r.pictures_per_second();
    t.add_row({name, std::to_string(workers), Table::fmt(pps, 1),
               pps >= 30 ? "yes" : "no",
               Table::fmt(100 * load.sync_ratio, 1),
               !r.ok ? "DECODE FAILED"
                     : (bit_exact ? "bit-exact" : "MISMATCH")});
    auto& row = report.add_row();
    row.set("decoder", name)
        .set("pictures_per_second", pps)
        .set("bit_exact", bit_exact)
        .set("pictures", r.pictures)
        .set("concealed_slices", r.concealed_slices)
        .set("scan_s", r.scan_s)
        .set("peak_frame_bytes", r.peak_frame_bytes)
        .set("megabytes_per_second", r.megabytes_per_second());
    // Same load-summary schema as the bench harnesses.
    row.set("workers", workers)
        .set("tasks", load.tasks)
        .set("imbalance", load.imbalance)
        .set("sync_ratio", load.sync_ratio)
        .set("utilization", load.utilization);
    return row;
  };

  {
    mpeg2::MemoryTracker tracker;
    parallel::GopDecoderConfig cfg;
    cfg.workers = workers;
    cfg.tracker = &tracker;
    cfg.live = live.get();
    cfg.prof = prof.get();
    cfg.watchdog_ns = watchdog_ms * 1'000'000;
    if (trace_decoder == "gop") {
      cfg.tracer = tracer.get();
      cfg.metrics = &metrics;
    }
    // Stall fault hook: block the display consumer once at the stream's
    // midpoint. The bounded display queue backs the whole pipeline up, so
    // progress genuinely stops — the stall SLO must see it in flight.
    parallel::FrameCallback stall_cb;
    const std::int64_t inject_stall_ms =
        flags.get_int("inject-stall-ms", 0);
    if (inject_stall_ms > 0) {
      stall_cb = [seen = 0, at = spec.pictures / 2,
                  inject_stall_ms](mpeg2::FramePtr) mutable {
        if (++seen == at) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(inject_stall_ms));
        }
      };
    }
    record("GOP-parallel",
           parallel::GopParallelDecoder(cfg).decode(stream, stall_cb));
  }
  {
    parallel::SliceDecoderConfig cfg;
    cfg.workers = workers;
    cfg.policy = parallel::SlicePolicy::kSimple;
    cfg.live = live.get();
    cfg.prof = prof.get();
    cfg.watchdog_ns = watchdog_ms * 1'000'000;
    {
      mpeg2::MemoryTracker tracker;
      cfg.tracker = &tracker;
      if (trace_decoder == "slice-simple") {
        cfg.tracer = tracer.get();
        cfg.metrics = &metrics;
      }
      record("slice (simple)",
             parallel::SliceParallelDecoder(cfg).decode(stream));
    }
    {
      mpeg2::MemoryTracker tracker;
      cfg.tracker = &tracker;
      cfg.policy = parallel::SlicePolicy::kImproved;
      cfg.tracer = trace_decoder == "slice-improved" ? tracer.get() : nullptr;
      cfg.metrics = trace_decoder == "slice-improved" ? &metrics : nullptr;
      record("slice (improved)",
             parallel::SliceParallelDecoder(cfg).decode(stream));
    }
  }
  {
    mpeg2::MemoryTracker tracker;
    parallel::AdaptiveDecoderConfig cfg;
    cfg.workers = workers;
    cfg.tracker = &tracker;
    cfg.live = live.get();
    cfg.prof = prof.get();
    cfg.watchdog_ns = watchdog_ms * 1'000'000;
    if (trace_decoder == "adaptive") {
      cfg.tracer = tracer.get();
      cfg.metrics = &metrics;
    }
    const auto r = parallel::AdaptiveDecoder(cfg).decode(stream);
    record("adaptive", r)
        .set("gop_mode_gops", r.gop_mode_gops)
        .set("exploded_gops", r.exploded_gops)
        .set("stolen_tasks", static_cast<std::int64_t>(r.stolen_tasks))
        .set("pool_hits", static_cast<std::int64_t>(r.pool_hits))
        .set("pool_misses", static_cast<std::int64_t>(r.pool_misses));
    const std::uint64_t pool_total = r.pool_hits + r.pool_misses;
    std::cout << "adaptive dispatch: " << r.gop_mode_gops
              << " whole GOP(s), " << r.exploded_gops << " exploded, "
              << r.stolen_tasks << " stolen task(s), pool hit rate "
              << (pool_total > 0
                      ? Table::fmt(100.0 * static_cast<double>(r.pool_hits) /
                                       static_cast<double>(pool_total),
                                   1)
                      : "-")
              << "%\n";
  }

  // Final tick + alert log before the report is written, so the stream's
  // closing snapshot and the report agree on the run's totals.
  if (sampler) {
    sampler->stop();
    for (const auto& alert : sampler->alert_log()) {
      report.add_alert({alert.rule, alert.value, alert.threshold,
                        alert.fired_at_ns, alert.cleared_at_ns});
    }
    report.set_meta("live_snapshots",
                    static_cast<std::int64_t>(sampler->snapshots()));
    if (!live_out.empty()) {
      std::cout << "wrote " << live_out << " (" << sampler->snapshots()
                << " snapshots); watch with tools/pmp2_top\n";
    }
  }

  t.print(std::cout);
  std::cout << "\nNote: on a single-core host the threaded decoders cannot"
               " beat the sequential one; see the bench_* harnesses for the"
               " virtual-time multiprocessor results.\n";

  int rc = divergences > 0 || hangs > 0 ? 1 : 0;
  if (!prof_out.empty()) {
    stack_sampler.stop();
    const obs::prof::CollapsedProfile collapsed = stack_sampler.collapse();
    std::ofstream os(prof_out, std::ios::out | std::ios::trunc);
    if (os) {
      obs::prof::SamplingProfiler::write_collapsed(os, collapsed);
    }
    if (os) {
      std::cout << "wrote " << prof_out << " (" << collapsed.total
                << " samples, " << collapsed.stacks.size()
                << " stacks); inspect with tools/pmp2_prof\n";
      if (collapsed.dropped > 0) {
        std::cerr << "warning: sampling ring overflow dropped "
                  << collapsed.dropped << " sample(s)\n";
      }
    } else {
      std::cerr << "error: cannot write profile to " << prof_out << "\n";
      rc = 1;
    }
  }
  if (prof) {
    obs::prof::ProfSummary summary = prof->aggregate();
    summary.kernels_backend = mpeg2::kernels::active().name;
    std::cout << "\n=== stage counters (" << summary.source << ") ===\n";
    obs::prof::write_prof_text(std::cout, summary);
    if (!prof_json_out.empty()) {
      std::ofstream os(prof_json_out, std::ios::out | std::ios::trunc);
      if (os) obs::prof::write_prof_json(os, summary);
      if (os) {
        std::cout << "wrote " << prof_json_out
                  << "; decompose with pmp2_analyze --prof\n";
      } else {
        std::cerr << "error: cannot write profile to " << prof_json_out
                  << "\n";
        rc = 1;
      }
    }
  }
  if (divergences > 0) {
    std::cerr << "error: " << divergences
              << " decoder(s) failed or diverged from the sequential"
                 " reference\n";
  }
  if (hangs > 0) {
    std::cerr << "error: " << hangs << " decoder run(s) hung (watchdog"
              << " evidence above)\n";
  }
  if (sampler && !sampler->io_ok()) {
    std::cerr << "error: live telemetry exporter I/O failed\n";
    rc = 1;
  }
  if (tracer) {
    // Lossy-ring accounting in the run report: total plus per-track drops,
    // so a report consumer can tell an honest timeline from a truncated one
    // without opening the trace itself.
    report.set_meta("trace_decoder", trace_decoder)
        .set_meta("trace_spans", static_cast<std::int64_t>(
                                     tracer->total_spans()))
        .set_meta("trace_dropped", static_cast<std::int64_t>(
                                       tracer->total_dropped()));
    for (int i = 0; i <= workers; ++i) {
      const auto& track = tracer->track(i);
      if (track.dropped() > 0) {
        report.set_meta("trace_dropped_track_" + std::to_string(i),
                        static_cast<std::int64_t>(track.dropped()));
      }
    }
    if (tracer->total_dropped() > 0) {
      std::cerr << "warning: span ring overflow dropped "
                << tracer->total_dropped()
                << " span(s); timeline analyses will undercount\n";
    }
  }
  if (!trace_out.empty()) {
    if (tracer->write_chrome_trace_file(trace_out)) {
      std::cout << "wrote " << trace_out << " (" << tracer->total_spans()
                << " spans, decoder: " << trace_decoder
                << "); open in Perfetto or chrome://tracing\n";
    } else {
      std::cerr << "error: cannot write trace to " << trace_out << "\n";
      rc = 1;
    }
  }
  if (!journal_out.empty()) {
    if (tracer->write_journal_file(journal_out)) {
      std::cout << "wrote " << journal_out << " (" << tracer->total_spans()
                << " spans); analyze with tools/pmp2_analyze\n";
    } else {
      std::cerr << "error: cannot write journal to " << journal_out << "\n";
      rc = 1;
    }
  }
  if (analyze_trace) {
    std::cout << "\n=== trace analysis (" << trace_decoder << ") ===\n";
    const auto analysis =
        obs::analysis::analyze(obs::analysis::from_tracer(*tracer));
    obs::analysis::write_analysis_text(std::cout, analysis);
    if (!analysis.ok) {
      std::cerr << "error: trace analysis failed: " << analysis.error << "\n";
      rc = 1;
    }
  }
  if (dump_metrics) {
    std::cout << "\n";
    metrics.write_text(std::cout);
  }
  if (!report_out.empty()) {
    if (report.write_file(report_out)) {
      std::cout << "wrote " << report_out << " (" << report.rows()
                << " rows)\n";
    } else {
      std::cerr << "error: cannot write report to " << report_out << "\n";
      rc = 1;
    }
  }
  for (const auto& f : flags.unused()) {
    std::cerr << "warning: unused flag --" << f << "\n";
  }
  return rc;
}
