// Real-time playback scenario (the paper's motivating application): decode
// a stream with the sequential decoder, the GOP-parallel decoder and both
// slice-parallel decoders, report pictures/sec against the 30 pics/s
// real-time bar, and verify all four outputs are bit-identical.
//
//   ./parallel_playback [--width=352 --pictures=52 --gop=13 --workers=N]
#include <iostream>
#include <thread>

#include "mpeg2/decoder.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "streamgen/stream_factory.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  streamgen::StreamSpec spec;
  spec.width = static_cast<int>(flags.get_int("width", 352));
  spec.height = static_cast<int>(
      flags.get_int("height", spec.width * 240 / 352));
  spec.pictures = static_cast<int>(flags.get_int("pictures", 52));
  spec.gop_size = static_cast<int>(flags.get_int("gop", 13));
  spec.bit_rate = flags.get_int("bitrate", 5'000'000);
  const int workers = static_cast<int>(flags.get_int(
      "workers", std::max(2u, std::thread::hardware_concurrency())));

  std::cout << "Encoding " << spec.pictures << " pictures at " << spec.width
            << "x" << spec.height << "...\n";
  const auto stream = streamgen::generate_stream(spec);

  Table t({"Decoder", "Workers", "Pictures/s", "Real-time (30/s)?",
           "Sync time %", "Output"});

  // Sequential reference.
  std::uint64_t want = 0;
  {
    mpeg2::Decoder dec;
    WallTimer timer;
    int frames = 0;
    const auto st = dec.decode_stream(stream, [&](mpeg2::FramePtr f) {
      want = parallel::chain_frame_checksum(want, *f);
      ++frames;
    });
    const double pps = frames / timer.elapsed_s();
    if (!st.ok) {
      std::cerr << "sequential decode failed\n";
      return 1;
    }
    t.add_row({"sequential", "1", Table::fmt(pps, 1),
               pps >= 30 ? "yes" : "no", "-", "reference"});
  }

  auto report = [&](const char* name, const parallel::RunResult& r) {
    double sync = 0, busy = 0;
    for (const auto& w : r.workers) {
      sync += static_cast<double>(w.sync_ns);
      busy += static_cast<double>(w.compute_ns);
    }
    const double pps = r.pictures_per_second();
    t.add_row({name, std::to_string(workers), Table::fmt(pps, 1),
               pps >= 30 ? "yes" : "no",
               Table::fmt(100 * sync / (sync + busy), 1),
               r.checksum == want ? "bit-exact" : "MISMATCH"});
  };

  {
    parallel::GopDecoderConfig cfg;
    cfg.workers = workers;
    report("GOP-parallel", parallel::GopParallelDecoder(cfg).decode(stream));
  }
  {
    parallel::SliceDecoderConfig cfg;
    cfg.workers = workers;
    cfg.policy = parallel::SlicePolicy::kSimple;
    report("slice (simple)",
           parallel::SliceParallelDecoder(cfg).decode(stream));
    cfg.policy = parallel::SlicePolicy::kImproved;
    report("slice (improved)",
           parallel::SliceParallelDecoder(cfg).decode(stream));
  }

  t.print(std::cout);
  std::cout << "\nNote: on a single-core host the threaded decoders cannot"
               " beat the sequential one; see the bench_* harnesses for the"
               " virtual-time multiprocessor results.\n";
  return 0;
}
